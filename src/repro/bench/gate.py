"""Baseline comparison and the phase-attributed regression gate.

``compare_runs`` pairs every workload of two run documents and renders a
noise-aware verdict per workload; for significant deltas the verdict
carries a **phase attribution** string built from the stored per-phase
medians — ``"tracegen +1210.3%, replay -0.8%, timing +1.2%"`` — naming
the pipeline stage that actually moved instead of reporting a bare
total.

``gate_runs`` turns the verdicts into a CI decision:

* absolute-seconds regressions fail the gate only when both documents
  carry the same host fingerprint hash (a laptop run against a CI-host
  baseline is *skipped*, not failed);
* dimensionless ratio floors (``ratio_gates`` in the baseline document,
  e.g. ``{"engine_speedup": {"min": 8.0}}``) apply regardless of host —
  the statistical replacement for the old hard-coded ≥10× fast-engine
  assert: the measured ratio's **CI low** must clear the floor, so a
  lucky point estimate cannot pass the gate;
* :func:`check_committed_speedup` applies the same CI-low discipline to
  the committed ``BENCH_simulator.json`` snapshot.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.stats import Comparison, Summary, compare

DEFAULT_MIN_EFFECT = 0.02

#: Default effect floor for the pass/fail *gate* (vs the informational
#: ``compare``, which stays at DEFAULT_MIN_EFFECT).  Within-run bootstrap
#: CIs capture sampling noise but not between-invocation noise on shared
#: or virtualized hosts (VM steal, governor shifts, process placement),
#: which routinely moves medians ±30-40% with no code change — and a
#: regression gate that flakes gets ignored.  The movements this gate
#: exists to catch (engine rot, a phase going quadratic) are multiples,
#: not percents; tighten with ``--min-effect`` on dedicated hardware.
DEFAULT_GATE_MIN_EFFECT = 0.5

_BENCH_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks")
)
DEFAULT_COMMITTED_BENCH = os.path.join(_BENCH_DIR, "BENCH_simulator.json")

#: Default floor for the committed fast-engine speedup (the historical
#: CI contract, now enforced on the interval rather than the point).
DEFAULT_MIN_SPEEDUP = 10.0


@dataclass
class WorkloadVerdict:
    """One workload's comparison outcome."""

    workload: str
    status: str               # ok | regression | improvement | skipped | missing
    base_median: float = 0.0
    new_median: float = 0.0
    delta_pct: float = 0.0
    noise_floor_pct: float = 0.0
    phase_verdict: str = ""   # "tracegen +12.3%, replay -1.0%" for significant deltas
    primary_phase: str = ""   # largest mover (empty when phases are unknown)
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        if self.status == "missing":
            return f"{self.workload}: {self.detail}"
        if self.status == "skipped":
            return f"{self.workload}: skipped ({self.detail})"
        line = (
            f"{self.workload}: {self.status} "
            f"{self.delta_pct:+.1f}% "
            f"(noise floor ±{self.noise_floor_pct:.1f}%)"
        )
        if self.phase_verdict:
            line += f" — {self.phase_verdict}"
        return line


@dataclass
class GateResult:
    ok: bool
    failures: List[str] = field(default_factory=list)
    verdicts: List[WorkloadVerdict] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "failures": list(self.failures),
            "verdicts": [v.as_dict() for v in self.verdicts],
        }


def _phase_attribution(
    base_entry: Dict[str, Any], new_entry: Dict[str, Any]
) -> "tuple[str, str]":
    """(verdict string, primary phase) from stored per-phase medians.

    Phases are ordered by the absolute seconds they moved, so the
    heaviest contributor leads the string; the primary phase is the
    largest *positive* mover (the thing that actually got slower).
    """
    base_phases = base_entry.get("phases", {})
    new_phases = new_entry.get("phases", {})
    names = [name for name in base_phases if name in new_phases]
    movers = []
    for name in names:
        base_med = float(base_phases[name].get("median", 0.0))
        new_med = float(new_phases[name].get("median", 0.0))
        if base_med <= 0:
            continue
        movers.append((name, new_med - base_med, 100.0 * (new_med - base_med) / base_med))
    if not movers:
        return "", ""
    movers.sort(key=lambda item: -abs(item[1]))
    verdict = ", ".join(f"{name} {pct:+.1f}%" for name, _delta, pct in movers)
    positive = [item for item in movers if item[1] > 0]
    primary = positive[0][0] if positive else ""
    return verdict, primary


def compare_workload(
    workload: str,
    base_entry: Dict[str, Any],
    new_entry: Dict[str, Any],
    min_effect: float = DEFAULT_MIN_EFFECT,
) -> WorkloadVerdict:
    base_summary = Summary.from_dict(base_entry["summary"])
    new_summary = Summary.from_dict(new_entry["summary"])
    comparison: Comparison = compare(base_summary, new_summary, min_effect=min_effect)
    phase_verdict, primary = ("", "")
    if comparison.significant:
        phase_verdict, primary = _phase_attribution(base_entry, new_entry)
    status = {
        "regression": "regression",
        "improvement": "improvement",
        "flat": "ok",
        "incomparable": "skipped",
    }[comparison.direction]
    detail = "degenerate medians" if comparison.direction == "incomparable" else ""
    return WorkloadVerdict(
        workload=workload,
        status=status,
        base_median=base_summary.median,
        new_median=new_summary.median,
        delta_pct=comparison.delta_pct,
        noise_floor_pct=comparison.noise_floor_pct,
        phase_verdict=phase_verdict,
        primary_phase=primary,
        detail=detail,
    )


def compare_runs(
    base_doc: Dict[str, Any],
    new_doc: Dict[str, Any],
    min_effect: float = DEFAULT_MIN_EFFECT,
) -> List[WorkloadVerdict]:
    """Verdicts for every workload present in either document."""
    verdicts: List[WorkloadVerdict] = []
    base_workloads = base_doc.get("workloads", {})
    new_workloads = new_doc.get("workloads", {})
    comparable = base_doc.get("host_hash", "") == new_doc.get("host_hash", "")
    for workload in sorted(set(base_workloads) | set(new_workloads)):
        base_entry = base_workloads.get(workload)
        new_entry = new_workloads.get(workload)
        if base_entry is None:
            verdicts.append(WorkloadVerdict(
                workload=workload, status="missing",
                detail="not in baseline (new workload; re-save the baseline)",
            ))
            continue
        if new_entry is None:
            verdicts.append(WorkloadVerdict(
                workload=workload, status="missing",
                detail="in baseline but not measured by this run",
            ))
            continue
        if not comparable:
            verdicts.append(WorkloadVerdict(
                workload=workload, status="skipped",
                base_median=float(base_entry["summary"].get("median", 0.0)),
                new_median=float(new_entry["summary"].get("median", 0.0)),
                detail=(
                    f"host fingerprint differs "
                    f"({base_doc.get('host_hash', '?')} vs "
                    f"{new_doc.get('host_hash', '?')}); absolute seconds "
                    "not comparable"
                ),
            ))
            continue
        verdicts.append(
            compare_workload(workload, base_entry, new_entry, min_effect=min_effect)
        )
    return verdicts


def _ratio_gate_failures(
    base_doc: Dict[str, Any], new_doc: Dict[str, Any]
) -> List[str]:
    failures: List[str] = []
    gates = base_doc.get("ratio_gates", {})
    derived = new_doc.get("derived", {})
    for name, spec in sorted(gates.items()):
        floor = float(spec.get("min", 0.0))
        if floor <= 0:
            continue
        ratio = derived.get(name)
        if ratio is None:
            failures.append(
                f"ratio gate {name}: no measurement in this run "
                f"(floor {floor:g})"
            )
            continue
        ci_low = float(ratio.get("ci_low", 0.0))
        if ci_low < floor:
            failures.append(
                f"ratio gate {name}: CI low {ci_low:.2f} below floor "
                f"{floor:g} (value {float(ratio.get('value', 0.0)):.2f})"
            )
    return failures


def gate_runs(
    base_doc: Dict[str, Any],
    new_doc: Dict[str, Any],
    min_effect: float = DEFAULT_GATE_MIN_EFFECT,
) -> GateResult:
    """CI decision: regressions outside the noise floor (same host) and
    violated ratio floors fail; improvements and foreign hosts do not.

    The default effect floor is deliberately coarser than ``compare``'s
    (see :data:`DEFAULT_GATE_MIN_EFFECT`): the gate trades sensitivity to
    sub-50% drifts for never flaking on shared hosts."""
    verdicts = compare_runs(base_doc, new_doc, min_effect=min_effect)
    failures: List[str] = []
    for verdict in verdicts:
        if verdict.status == "regression":
            failures.append(verdict.render())
        elif verdict.status == "missing" and "not measured" in verdict.detail:
            failures.append(verdict.render())
    failures.extend(_ratio_gate_failures(base_doc, new_doc))
    return GateResult(ok=not failures, failures=failures, verdicts=verdicts)


def check_committed_speedup(
    path: str = DEFAULT_COMMITTED_BENCH,
    min_speedup: float = DEFAULT_MIN_SPEEDUP,
) -> List[str]:
    """Validate the committed simulator benchmark's engine speedup.

    New-schema documents carry a ``speedup_ci`` interval per metric; its
    low end must clear the floor.  Old one-shot snapshots (no interval)
    fall back to the point estimate, preserving the historical check.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        return [f"committed benchmark {path} unreadable: {exc}"]
    engine = payload.get("engine")
    if not isinstance(engine, dict):
        return [f"committed benchmark {path} has no 'engine' section"]
    ci = engine.get("speedup_ci")
    if isinstance(ci, (list, tuple)) and len(ci) == 2:
        low = float(ci[0])
        if low < min_speedup:
            return [
                f"committed engine speedup CI low {low:.2f} below the "
                f"{min_speedup:g}x floor (point {engine.get('speedup')})"
            ]
        return []
    speedup = float(engine.get("speedup", 0.0))
    if speedup < min_speedup:
        return [
            f"committed engine speedup {speedup:.2f} below the "
            f"{min_speedup:g}x floor (one-shot snapshot, no CI)"
        ]
    return []


def default_ratio_gates(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Ratio floors derived from a run being saved as a baseline: half
    the measured CI low, so a clean re-run passes with margin while an
    order-of-magnitude engine regression cannot."""
    gates: Dict[str, Any] = {}
    for name, ratio in doc.get("derived", {}).items():
        ci_low = float(ratio.get("ci_low", 0.0))
        if ci_low > 2.0:
            gates[name] = {"min": round(ci_low / 2.0, 2)}
    return gates
