"""Manifest execution: run documents, baselines, trend appends.

``run_manifest`` measures every workload of a manifest through the
calibrated harness and reduces the results to one JSON-able **run
document**::

    {
      "schema": 1, "ts": ..., "commit": "fe709f7", "manifest": "quick",
      "fingerprint": {...}, "host_hash": "ab12cd34ef56",
      "workloads": {
        "fig2_naive": {"kind": "figure-slice", "summary": {...},
                        "phases": {"tracegen": {...}, ...}, ...},
        ...
      },
      "derived": {"engine_speedup": {"value": ..., "ci_low": ..., ...}}
    }

The same document shape is what ``--save-baseline`` commits (plus
optional ``ratio_gates``) and what the gate compares.  Every run also
appends one point per workload to the commit-keyed trend store.
"""

from __future__ import annotations

import json
import logging
import os
import time
from typing import Any, Callable, Dict, List, Optional

from repro.bench.harness import (
    DEFAULT_MAX_REPEATS,
    DEFAULT_MAX_SECONDS,
    DEFAULT_MIN_REPEATS,
    DEFAULT_TARGET_REL_CI,
    Measurement,
    fingerprint_hash,
    host_fingerprint,
    measure,
)
from repro.bench.stats import Summary
from repro.bench.trend import DEFAULT_TREND_DIR, TrendStore, current_commit
from repro.bench.workloads import DERIVED_RATIOS, Workload, manifest_workloads

LOG = logging.getLogger("repro.bench.run")

BENCH_SCHEMA = 1

_BENCH_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks")
)

#: Committed baseline the gate compares against by default.
DEFAULT_BASELINE_PATH = os.path.join(_BENCH_DIR, "bench_baseline.json")

#: Where ``repro bench run`` drops its latest document (under the trend
#: directory, next to the history it also appends to).
DEFAULT_RUN_PATH = os.path.join(DEFAULT_TREND_DIR, "last_run.json")


def run_manifest(
    manifest: str = "quick",
    only: Optional[List[str]] = None,
    target_rel_ci: float = DEFAULT_TARGET_REL_CI,
    min_repeats: int = DEFAULT_MIN_REPEATS,
    max_repeats: int = DEFAULT_MAX_REPEATS,
    max_seconds_per_workload: float = DEFAULT_MAX_SECONDS,
    warmup: int = 1,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Measure one manifest; returns the run document."""
    workloads = manifest_workloads(manifest, only)
    if not workloads:
        raise ValueError(f"manifest {manifest!r} filtered down to nothing")
    say = progress or (lambda line: None)

    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "ts": time.time(),
        "commit": current_commit(),
        "manifest": manifest,
        "fingerprint": host_fingerprint(),
        "workloads": {},
    }
    doc["host_hash"] = fingerprint_hash(doc["fingerprint"])

    for workload in workloads:
        say(f"{workload.id}: measuring ({workload.description})")
        measurement = _measure_workload(
            workload,
            target_rel_ci=target_rel_ci,
            min_repeats=min_repeats,
            max_repeats=max_repeats,
            max_seconds=max_seconds_per_workload,
            warmup=warmup,
            seed=seed,
        )
        entry = measurement.as_dict()
        entry["kind"] = workload.kind
        entry["description"] = workload.description
        doc["workloads"][workload.id] = entry
        summary = measurement.summary
        say(
            f"{workload.id}: median {fmt_seconds(summary.median)} "
            f"±{100.0 * summary.rel_ci:.1f}% "
            f"({measurement.repeats} repeats"
            f"{'' if measurement.converged else ', CI target not reached'})"
        )

    doc["derived"] = _derive_ratios(doc["workloads"])
    return doc


def _measure_workload(workload: Workload, **kwargs: Any) -> Measurement:
    fn = workload.build()
    try:
        return measure(fn, **kwargs)
    finally:
        close = getattr(fn, "close", None)
        if close is not None:
            try:
                close()
            except Exception as exc:  # cleanup must not eat the measurement
                LOG.warning("workload %s cleanup failed: %s", workload.id, exc)


def _derive_ratios(workloads: Dict[str, Any]) -> Dict[str, Any]:
    """Dimensionless cross-workload ratios with conservative CIs.

    The ratio CI divides the extreme ends of the operand CIs
    (``[num.lo/den.hi, num.hi/den.lo]``) — wider than a bootstrap of the
    paired ratio, never narrower, so a floor on ``ci_low`` is safe.
    """
    out: Dict[str, Any] = {}
    for name, (num_id, den_id) in DERIVED_RATIOS.items():
        num = workloads.get(num_id)
        den = workloads.get(den_id)
        if not num or not den:
            continue
        num_s = Summary.from_dict(num["summary"])
        den_s = Summary.from_dict(den["summary"])
        if den_s.median <= 0 or den_s.ci_low <= 0 or den_s.ci_high <= 0:
            continue
        out[name] = {
            "value": num_s.median / den_s.median,
            "ci_low": num_s.ci_low / den_s.ci_high,
            "ci_high": num_s.ci_high / den_s.ci_low,
            "numerator": num_id,
            "denominator": den_id,
        }
    return out


def fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}µs"


# -- document I/O -------------------------------------------------------------


def save_run(doc: Dict[str, Any], path: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def load_run(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"bench document {path} has schema "
            f"{doc.get('schema') if isinstance(doc, dict) else '?'} "
            f"(want {BENCH_SCHEMA}); regenerate it with `repro bench run`"
        )
    doc.setdefault("workloads", {})
    doc.setdefault("derived", {})
    return doc


def append_trend(doc: Dict[str, Any], store: Optional[TrendStore] = None) -> int:
    """One trend point per workload (plus one per derived ratio)."""
    store = store or TrendStore()
    appended = 0
    base = {
        "ts": doc.get("ts"),
        "commit": doc.get("commit", "unknown"),
        "manifest": doc.get("manifest", ""),
        "host": doc.get("host_hash", ""),
    }
    for workload_id, entry in sorted(doc.get("workloads", {}).items()):
        summary = entry.get("summary", {})
        store.append(
            dict(
                base,
                workload=workload_id,
                kind=entry.get("kind", ""),
                n=summary.get("n"),
                median=summary.get("median"),
                ci_low=summary.get("ci_low"),
                ci_high=summary.get("ci_high"),
                mad=summary.get("mad"),
                rel_ci=summary.get("rel_ci"),
                phases={
                    name: phase.get("median")
                    for name, phase in entry.get("phases", {}).items()
                },
            )
        )
        appended += 1
    for name, ratio in sorted(doc.get("derived", {}).items()):
        store.append(
            dict(
                base,
                workload=name,
                kind="derived-ratio",
                median=ratio.get("value"),
                ci_low=ratio.get("ci_low"),
                ci_high=ratio.get("ci_high"),
            )
        )
        appended += 1
    return appended
