"""Statistical benchmarking and regression detection.

The perf trajectory of this repository is itself a deliverable: the
source paper's argument is measured throughput, and every optimisation
PR (fast engine, workpool fan-out, serve batching) claims a wall-clock
win.  This package turns those claims into defensible numbers:

* :mod:`repro.bench.stats` — robust statistics: median, MAD outlier
  rejection, deterministic bootstrap confidence intervals, and a
  symmetric noise-aware ``compare``;
* :mod:`repro.bench.harness` — calibrated measurement: warmup,
  auto-repeat until a target CI width, per-phase span attribution and a
  host fingerprint so runs are comparable;
* :mod:`repro.bench.workloads` — deterministic workload manifests
  (figure slices, tracegen-only, engine replay, serve round-trip);
* :mod:`repro.bench.trend` — append-only commit-keyed JSONL trend store
  under ``benchmarks/trend/`` (rotation-aware like the run journal);
* :mod:`repro.bench.run` / :mod:`repro.bench.gate` — manifest execution
  documents, baseline comparison and the phase-attributed CI gate;
* :mod:`repro.bench.cli` — ``repro bench {run,compare,trend,gate}``.
"""

from repro.bench.stats import (
    Comparison,
    Summary,
    bootstrap_ci,
    compare,
    mad,
    median,
    noise_floor,
    reject_outliers,
    summarize,
)
from repro.bench.harness import (
    Measurement,
    fingerprint_hash,
    fingerprints_comparable,
    host_fingerprint,
    measure,
)
from repro.bench.trend import TrendStore, current_commit

__all__ = [
    "Comparison",
    "Summary",
    "bootstrap_ci",
    "compare",
    "mad",
    "median",
    "noise_floor",
    "reject_outliers",
    "summarize",
    "Measurement",
    "fingerprint_hash",
    "fingerprints_comparable",
    "host_fingerprint",
    "measure",
    "TrendStore",
    "current_commit",
]
