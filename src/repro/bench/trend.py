"""Append-only commit-keyed trend store under ``benchmarks/trend/``.

Every ``repro bench run`` appends one JSONL point per workload —
timestamp, git commit, workload id, robust summary, phase medians, host
hash — turning nine PRs of invisible perf trajectory into a queryable
history (``repro bench trend``).

The store borrows the run journal's durability discipline
(:mod:`repro.runtime.journal`): appends are serialized under a
:class:`~repro.runtime.locks.FileLock`, the active file rotates at a
size bound (``trend.jsonl → trend.jsonl.1 → …``), and reads walk every
surviving segment oldest-first so rotation never loses the visible
history mid-query.  Unparseable lines (torn writes) are skipped, not
fatal.
"""

from __future__ import annotations

import json
import logging
import os
import subprocess
import time
from typing import Any, Dict, List, Optional

from repro.runtime.locks import FileLock

LOG = logging.getLogger("repro.bench.trend")

TREND_BASENAME = "trend.jsonl"

_BENCH_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..", "benchmarks")
)

#: Default committed trend location (repo root / benchmarks / trend).
DEFAULT_TREND_DIR = os.path.join(_BENCH_DIR, "trend")

#: Rotation env knobs (same semantics as the journal's: 0 max bytes
#: disables rotation).
ENV_MAX_BYTES = "REPRO_TREND_MAX_BYTES"
ENV_SEGMENTS = "REPRO_TREND_SEGMENTS"
DEFAULT_MAX_BYTES = 512 * 1024
DEFAULT_MAX_SEGMENTS = 4

#: Commit override for environments without a git checkout (CI tarballs).
ENV_COMMIT = "REPRO_COMMIT"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        LOG.warning("ignoring non-integer %s=%r", name, raw)
        return default


def current_commit(cwd: Optional[str] = None) -> str:
    """Short commit id keying trend points: ``REPRO_COMMIT`` if set, else
    ``git rev-parse`` (with a ``+`` suffix when the tree is dirty), else
    ``"unknown"`` — a missing git must not fail a benchmark run."""
    env = os.environ.get(ENV_COMMIT, "").strip()
    if env:
        return env
    cwd = cwd or _BENCH_DIR
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10.0,
        )
        if commit.returncode != 0:
            return "unknown"
        rev = commit.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10.0,
        )
        if status.returncode == 0 and status.stdout.strip():
            rev += "+"
        return rev or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


class TrendStore:
    """Locked, size-rotated JSONL store of bench trend points."""

    def __init__(
        self,
        directory: str = DEFAULT_TREND_DIR,
        max_bytes: Optional[int] = None,
        max_segments: Optional[int] = None,
    ):
        self.directory = directory
        self.path = os.path.join(directory, TREND_BASENAME)
        self.max_bytes = (
            _env_int(ENV_MAX_BYTES, DEFAULT_MAX_BYTES)
            if max_bytes is None else max(0, int(max_bytes))
        )
        self.max_segments = max(1, (
            _env_int(ENV_SEGMENTS, DEFAULT_MAX_SEGMENTS)
            if max_segments is None else int(max_segments)
        ))

    # -- writing -------------------------------------------------------------

    def append(self, point: Dict[str, Any]) -> None:
        """Append one point (a ``ts`` is added when missing)."""
        payload = dict(point)
        payload.setdefault("ts", time.time())
        try:
            line = json.dumps(payload, sort_keys=True, default=str)
        except (TypeError, ValueError) as exc:
            LOG.warning("trend point not serializable: %s", exc)
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            lock = FileLock(f"{self.path}.lock", timeout_s=10.0)
            locked = lock.acquire()
            if not locked:
                LOG.warning("trend lock %s.lock busy; appending without it", self.path)
            try:
                with open(self.path, "a") as fh:
                    fh.write(line + "\n")
                    fh.flush()
                    size = fh.tell()
                # Rotation renames whole files, so it only happens under
                # the lock that serializes appends (an unlocked append
                # skips it; a later locked one catches up).
                if self.max_bytes and size > self.max_bytes and locked:
                    self._rotate()
            finally:
                if locked:
                    lock.release()
        except OSError as exc:
            LOG.warning("trend %s not appended: %s", self.path, exc)

    def _rotate(self) -> None:
        try:
            os.unlink(f"{self.path}.{self.max_segments}")
        except OSError:
            pass
        for index in range(self.max_segments - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                try:
                    os.replace(source, f"{self.path}.{index + 1}")
                except OSError as exc:
                    LOG.warning("trend segment %s not rotated: %s", source, exc)
        try:
            os.replace(self.path, f"{self.path}.1")
        except OSError as exc:
            LOG.warning("trend %s not rotated: %s", self.path, exc)

    # -- reading -------------------------------------------------------------

    def segments(self) -> List[str]:
        """Existing trend files oldest-first (rotated then active)."""
        segments: List[str] = []
        index = 1
        while os.path.exists(f"{self.path}.{index}"):
            segments.append(f"{self.path}.{index}")
            index += 1
        segments.reverse()
        if os.path.exists(self.path):
            segments.append(self.path)
        return segments

    def points(
        self,
        workload: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """All points oldest-first across segments, optionally filtered to
        one workload and truncated to the most recent ``limit``."""
        out: List[Dict[str, Any]] = []
        for segment in self.segments():
            try:
                with open(segment) as fh:
                    lines = fh.readlines()
            except OSError as exc:
                LOG.warning("trend segment %s unreadable: %s", segment, exc)
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    point = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(point, dict):
                    continue
                if workload is not None and point.get("workload") != workload:
                    continue
                out.append(point)
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out
