"""Calibrated measurement: warmup, auto-repeat, phase spans, fingerprint.

:func:`measure` wraps a workload callable in the discipline a defensible
wall-clock number needs: warmup iterations that never count, repeats
until the bootstrap CI of the median is narrower than a target relative
width (bounded by a repeat cap and a time budget), and MAD outlier
rejection over the collected samples.

Each repeat runs under its own freshly-installed span
:class:`~repro.profiling.tracer.Tracer`, and spans named
``bench.phase.<name>`` (emitted via :func:`phase_span` by the workloads)
are aggregated into per-phase sample vectors.  That is what lets the
gate attribute a flagged regression to *tracegen vs replay vs timing vs
cache I/O* instead of reporting a bare total.

:func:`host_fingerprint` captures everything that makes two runs
comparable — machine, Python, core count, numpy, cffi/native-engine
availability, the resolved ``REPRO_ENGINE`` — and
:func:`fingerprint_hash` reduces the identity-bearing subset to a short
stable hash stored with every run and trend point.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List

from repro.bench.stats import (
    DEFAULT_MAX_REJECT_FRAC,
    DEFAULT_OUTLIER_K,
    Summary,
    summarize,
)
from repro.profiling import tracer

#: Span-name prefix marking a bench phase (everything after it is the
#: phase name the gate attributes regressions to).
PHASE_PREFIX = "bench.phase."

DEFAULT_TARGET_REL_CI = 0.05
DEFAULT_MIN_REPEATS = 5
DEFAULT_MAX_REPEATS = 30
DEFAULT_MAX_SECONDS = 60.0


@contextmanager
def phase_span(name: str) -> Iterator[None]:
    """Mark a bench phase; nested simulator spans stay children of it."""
    with tracer.span(PHASE_PREFIX + name, cat="bench"):
        yield


@dataclass
class Measurement:
    """One workload's calibrated result."""

    summary: Summary
    phases: Dict[str, Summary] = field(default_factory=dict)
    samples: List[float] = field(default_factory=list)
    phase_samples: Dict[str, List[float]] = field(default_factory=dict)
    repeats: int = 0
    warmup: int = 0
    target_rel_ci: float = DEFAULT_TARGET_REL_CI
    converged: bool = False
    elapsed_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.summary.as_dict(),
            "phases": {name: s.as_dict() for name, s in self.phases.items()},
            "samples": [round(s, 9) for s in self.samples],
            "repeats": self.repeats,
            "warmup": self.warmup,
            "target_rel_ci": self.target_rel_ci,
            "converged": self.converged,
            "elapsed_s": round(self.elapsed_s, 6),
        }


def _phase_totals(spans: List[Dict[str, Any]]) -> Dict[str, float]:
    """Seconds per bench phase in one repeat (sibling spans sum; nested
    simulator spans under a phase are intentionally not double-counted
    because only ``bench.phase.*`` names participate)."""
    totals: Dict[str, float] = {}
    for span in spans:
        name = span.get("name", "")
        if name.startswith(PHASE_PREFIX):
            phase = name[len(PHASE_PREFIX):]
            totals[phase] = totals.get(phase, 0.0) + span.get("dur_us", 0.0) / 1e6
    return totals


def measure(
    fn: Callable[[], Any],
    warmup: int = 1,
    min_repeats: int = DEFAULT_MIN_REPEATS,
    max_repeats: int = DEFAULT_MAX_REPEATS,
    target_rel_ci: float = DEFAULT_TARGET_REL_CI,
    max_seconds: float = DEFAULT_MAX_SECONDS,
    outlier_k: float = DEFAULT_OUTLIER_K,
    max_reject_frac: float = DEFAULT_MAX_REJECT_FRAC,
    seed: int = 0,
) -> Measurement:
    """Run ``fn`` repeatedly until the median's CI is tight enough.

    Stops at the first of: relative CI half-width ≤ ``target_rel_ci``
    (with at least ``min_repeats`` samples), ``max_repeats`` samples, or
    ``max_seconds`` of wall-clock spent measuring.  ``converged`` on the
    result records whether the CI target was actually reached — a run
    that ran out of budget says so instead of looking equally tight.
    """
    if min_repeats < 1:
        raise ValueError("min_repeats must be >= 1")
    max_repeats = max(max_repeats, min_repeats)
    started = time.perf_counter()
    for _ in range(max(0, warmup)):
        fn()

    samples: List[float] = []
    phase_samples: Dict[str, List[float]] = {}
    converged = False
    while True:
        repeat_tracer = tracer.Tracer()
        with tracer.install(repeat_tracer):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        for name, seconds in _phase_totals(repeat_tracer.span_dicts()).items():
            phase_samples.setdefault(name, []).append(seconds)
        if len(samples) >= min_repeats:
            partial = summarize(
                samples, outlier_k=outlier_k,
                max_reject_frac=max_reject_frac, seed=seed,
            )
            if partial.rel_ci <= target_rel_ci:
                converged = True
                break
        if len(samples) >= max_repeats:
            break
        if time.perf_counter() - started >= max_seconds:
            break

    kwargs = dict(outlier_k=outlier_k, max_reject_frac=max_reject_frac, seed=seed)
    return Measurement(
        summary=summarize(samples, **kwargs),
        phases={
            name: summarize(values, **kwargs)
            for name, values in phase_samples.items()
            if len(values) == len(samples)
        },
        samples=samples,
        phase_samples=phase_samples,
        repeats=len(samples),
        warmup=max(0, warmup),
        target_rel_ci=target_rel_ci,
        converged=converged,
        elapsed_s=time.perf_counter() - started,
    )


# -- host fingerprint ---------------------------------------------------------

#: Fingerprint keys that bear on comparability of absolute seconds.
#: Everything else in the fingerprint is context for humans.
IDENTITY_KEYS = (
    "machine", "system", "python", "cores", "engine", "native", "numpy",
)


def host_fingerprint() -> Dict[str, Any]:
    """Everything that decides whether two runs' seconds are comparable."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a baked-in dependency
        numpy_version = ""
    try:
        from repro.memsim.native import native_available
        native = bool(native_available())
    except Exception:
        native = False
    try:
        import cffi  # noqa: F401
        has_cffi = True
    except Exception:
        has_cffi = False
    from repro.memsim.columnar import resolve_engine

    return {
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cores": os.cpu_count() or 1,
        "numpy": numpy_version,
        "cffi": has_cffi,
        "native": native,
        "engine": resolve_engine(None),
        "env": {
            name: os.environ[name]
            for name in ("REPRO_ENGINE", "REPRO_NATIVE", "REPRO_PMU", "REPRO_JOBS")
            if name in os.environ
        },
    }


def fingerprint_hash(fingerprint: "Dict[str, Any] | None" = None) -> str:
    """Short stable hash of the identity-bearing fingerprint subset
    (defaults to this host's fingerprint)."""
    if fingerprint is None:
        fingerprint = host_fingerprint()
    identity = {key: fingerprint.get(key) for key in IDENTITY_KEYS}
    blob = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def fingerprints_comparable(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    """Can absolute seconds from the two hosts be compared at all?

    Dimensionless ratios (engine speedups) survive host changes;
    absolute medians do not — the gate downgrades them to "skipped"
    rather than failing a laptop run against a CI-host baseline.
    """
    return all(a.get(key) == b.get(key) for key in IDENTITY_KEYS)
