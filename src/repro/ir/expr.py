"""Value expressions of the loop-nest IR.

Expressions compute scalar values (the right-hand sides of stores and local
assignments).  Array subscripts are *not* expressions: they are
:class:`repro.ir.affine.Affine` objects, which keeps every memory reference
statically analyzable.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.errors import IRError
from repro.ir.affine import Affine
from repro.ir.types import DType

BINARY_OPS = ("+", "-", "*", "/", "min", "max")


class Expr:
    """Base class of all value expressions (immutable)."""

    __slots__ = ()

    # Sugar so kernels read naturally: a + b, a * k, ...
    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, wrap_expr(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", wrap_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, wrap_expr(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", wrap_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, wrap_expr(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", wrap_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", self, wrap_expr(other))

    def children(self) -> Tuple["Expr", ...]:
        return ()


ExprLike = object  # Expr | int | float


def wrap_expr(value: ExprLike) -> Expr:
    """Coerce python numbers into :class:`Const` expressions."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise IRError("booleans are not IR values")
    if isinstance(value, int):
        return Const(value, DType.I64)
    if isinstance(value, float):
        return Const(value, DType.F64)
    raise IRError(f"cannot interpret {value!r} as an IR expression")


class Const(Expr):
    """A scalar literal."""

    __slots__ = ("value", "dtype")

    def __init__(self, value, dtype: DType = DType.F64):
        self.value = value
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"{self.value}"


class LocalRef(Expr):
    """A read of a scalar local variable (see ``LocalAssign``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name


class IndexValue(Expr):
    """An affine index expression used as an arithmetic *value*.

    Needed for kernels that compute with the loop counter itself (none of
    the paper's kernels do, but initialization programs and tests do).
    """

    __slots__ = ("affine",)

    def __init__(self, affine: Affine):
        self.affine = Affine.wrap(affine)

    def __repr__(self) -> str:
        return f"({self.affine!r})"


class Load(Expr):
    """A read of ``array[indices...]`` with affine subscripts."""

    __slots__ = ("array", "indices")

    def __init__(self, array, indices: Sequence):
        indices = tuple(Affine.wrap(ix) for ix in indices)
        if len(indices) != len(array.shape):
            raise IRError(
                f"array {array.name!r} has rank {len(array.shape)}, got "
                f"{len(indices)} subscripts"
            )
        self.array = array
        self.indices = indices

    def __repr__(self) -> str:
        subs = ", ".join(repr(ix) for ix in self.indices)
        return f"{self.array.name}[{subs}]"


class BinOp(Expr):
    """A binary arithmetic operation."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: ExprLike, rhs: ExprLike):
        if op not in BINARY_OPS:
            raise IRError(f"unknown binary operator {op!r}")
        self.op = op
        self.lhs = wrap_expr(lhs)
        self.rhs = wrap_expr(rhs)

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.lhs!r}, {self.rhs!r})"
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


class Cast(Expr):
    """Convert a value to another scalar type."""

    __slots__ = ("dtype", "operand")

    def __init__(self, dtype: DType, operand: ExprLike):
        self.dtype = dtype
        self.operand = wrap_expr(operand)

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"{self.dtype.value}({self.operand!r})"


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def loads_in(expr: Expr) -> Iterator[Load]:
    """Yield every :class:`Load` inside ``expr``."""
    for node in walk_expr(expr):
        if isinstance(node, Load):
            yield node


def substitute_expr(expr: Expr, var: str, replacement) -> Expr:
    """Substitute a loop variable inside every affine subscript of ``expr``."""
    if isinstance(expr, Load):
        return Load(expr.array, [ix.substitute(var, replacement) for ix in expr.indices])
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            substitute_expr(expr.lhs, var, replacement),
            substitute_expr(expr.rhs, var, replacement),
        )
    if isinstance(expr, Cast):
        return Cast(expr.dtype, substitute_expr(expr.operand, var, replacement))
    if isinstance(expr, IndexValue):
        return IndexValue(expr.affine.substitute(var, replacement))
    return expr


def rename_expr(expr: Expr, mapping) -> Expr:
    """Rename loop variables inside every affine subscript of ``expr``."""
    if isinstance(expr, Load):
        return Load(expr.array, [ix.rename(mapping) for ix in expr.indices])
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rename_expr(expr.lhs, mapping), rename_expr(expr.rhs, mapping))
    if isinstance(expr, Cast):
        return Cast(expr.dtype, rename_expr(expr.operand, mapping))
    if isinstance(expr, IndexValue):
        return IndexValue(expr.affine.rename(mapping))
    return expr
