"""Affine integer expressions over loop variables.

Every array index and loop bound in the IR is affine:

    c0 + c1 * i + c2 * j + ...

with integer coefficients.  Keeping indices affine is what makes the whole
pipeline work: dependence tests are decidable, the trace generator can emit
compressed (base, stride, count) segments instead of per-element events, and
tiling/interchange are simple symbolic rewrites.

:class:`Affine` is immutable and hashable; arithmetic returns new objects.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.errors import IRError

IntLike = Union[int, "Affine"]


class Affine:
    """An immutable affine expression ``const + sum(coeff[v] * v)``.

    Zero coefficients are never stored, so two equal expressions always
    compare (and hash) equal.
    """

    __slots__ = ("const", "terms", "_hash")

    def __init__(self, const: int = 0, terms: Mapping[str, int] = None):
        self.const = int(const)
        cleaned: Dict[str, int] = {}
        if terms:
            for var, coeff in terms.items():
                coeff = int(coeff)
                if coeff != 0:
                    cleaned[var] = coeff
        self.terms = cleaned
        self._hash = hash((self.const, tuple(sorted(cleaned.items()))))

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str) -> "Affine":
        """The affine expression consisting of a single variable."""
        return Affine(0, {name: 1})

    @staticmethod
    def const_(value: int) -> "Affine":
        return Affine(int(value))

    @staticmethod
    def wrap(value: IntLike) -> "Affine":
        """Coerce an ``int`` or :class:`Affine` into an :class:`Affine`."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, int):
            return Affine(value)
        raise IRError(f"cannot interpret {value!r} as an affine expression")

    # -- queries -----------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.terms

    @property
    def variables(self) -> frozenset:
        return frozenset(self.terms)

    def coefficient(self, var: str) -> int:
        """Coefficient of ``var`` (0 when absent)."""
        return self.terms.get(var, 0)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a variable assignment; all variables must bind."""
        total = self.const
        for var, coeff in self.terms.items():
            try:
                total += coeff * env[var]
            except KeyError:
                raise IRError(f"unbound variable {var!r} in affine expression {self}")
        return total

    def substitute(self, var: str, replacement: IntLike) -> "Affine":
        """Replace ``var`` by an affine expression (or constant)."""
        coeff = self.terms.get(var, 0)
        if coeff == 0:
            return self
        rest = {v: c for v, c in self.terms.items() if v != var}
        return Affine(self.const, rest) + Affine.wrap(replacement) * coeff

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        """Rename variables; unmapped variables are kept."""
        terms: Dict[str, int] = {}
        for var, coeff in self.terms.items():
            new = mapping.get(var, var)
            terms[new] = terms.get(new, 0) + coeff
        return Affine(self.const, terms)

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: IntLike) -> "Affine":
        other = Affine.wrap(other)
        terms = dict(self.terms)
        for var, coeff in other.terms.items():
            terms[var] = terms.get(var, 0) + coeff
        return Affine(self.const + other.const, terms)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self.const, {v: -c for v, c in self.terms.items()})

    def __sub__(self, other: IntLike) -> "Affine":
        return self + (-Affine.wrap(other))

    def __rsub__(self, other: IntLike) -> "Affine":
        return Affine.wrap(other) + (-self)

    def __mul__(self, factor: int) -> "Affine":
        if isinstance(factor, Affine):
            if factor.is_constant:
                factor = factor.const
            elif self.is_constant:
                return factor * self.const
            else:
                raise IRError("product of two non-constant affine expressions")
        factor = int(factor)
        return Affine(self.const * factor, {v: c * factor for v, c in self.terms.items()})

    __rmul__ = __mul__

    # -- comparison / hashing ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Affine)
            and self.const == other.const
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        parts = []
        for var in sorted(self.terms):
            coeff = self.terms[var]
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")


class AffineBound:
    """A loop bound: either affine or the minimum of two affine expressions.

    ``min`` bounds appear when tiling loops whose extent is not a multiple of
    the tile size (the remainder tile is clamped to the original bound).
    """

    __slots__ = ("operands",)

    def __init__(self, *operands: IntLike):
        if not operands:
            raise IRError("AffineBound needs at least one operand")
        self.operands = tuple(Affine.wrap(op) for op in operands)

    @staticmethod
    def wrap(value: Union[int, Affine, "AffineBound"]) -> "AffineBound":
        if isinstance(value, AffineBound):
            return value
        return AffineBound(Affine.wrap(value))

    @property
    def is_plain(self) -> bool:
        """True when this bound is a single affine expression (no min)."""
        return len(self.operands) == 1

    @property
    def plain(self) -> Affine:
        if not self.is_plain:
            raise IRError(f"bound {self} is a min(), not a plain affine expression")
        return self.operands[0]

    @property
    def variables(self) -> frozenset:
        out = frozenset()
        for op in self.operands:
            out |= op.variables
        return out

    def evaluate(self, env: Mapping[str, int]) -> int:
        return min(op.evaluate(env) for op in self.operands)

    def substitute(self, var: str, replacement: IntLike) -> "AffineBound":
        return AffineBound(*[op.substitute(var, replacement) for op in self.operands])

    def rename(self, mapping: Mapping[str, str]) -> "AffineBound":
        return AffineBound(*[op.rename(mapping) for op in self.operands])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AffineBound) and set(self.operands) == set(other.operands)

    def __hash__(self) -> int:
        return hash(frozenset(self.operands))

    def __repr__(self) -> str:
        if self.is_plain:
            return repr(self.operands[0])
        return "min(" + ", ".join(repr(op) for op in self.operands) + ")"


def affine_min(a: IntLike, b: IntLike) -> AffineBound:
    """Build ``min(a, b)``, simplifying when both are constants."""
    a = Affine.wrap(a)
    b = Affine.wrap(b)
    if a.is_constant and b.is_constant:
        return AffineBound(Affine(min(a.const, b.const)))
    if a == b:
        return AffineBound(a)
    return AffineBound(a, b)


class AffineLowerBound:
    """A loop lower bound: the *maximum* of affine expressions.

    ``max`` lower bounds arise when tiling triangular iteration spaces: the
    blocked transpose iterates ``j`` from ``max(j_blk, i + 1)`` so diagonal
    tiles stay strictly upper-triangular while off-diagonal tiles are full.
    """

    __slots__ = ("operands",)

    def __init__(self, *operands: IntLike):
        if not operands:
            raise IRError("AffineLowerBound needs at least one operand")
        self.operands = tuple(Affine.wrap(op) for op in operands)

    @staticmethod
    def wrap(value) -> "AffineLowerBound":
        if isinstance(value, AffineLowerBound):
            return value
        return AffineLowerBound(Affine.wrap(value))

    @property
    def is_plain(self) -> bool:
        return len(self.operands) == 1

    @property
    def plain(self) -> Affine:
        if not self.is_plain:
            raise IRError(f"bound {self} is a max(), not a plain affine expression")
        return self.operands[0]

    @property
    def variables(self) -> frozenset:
        out = frozenset()
        for op in self.operands:
            out |= op.variables
        return out

    def evaluate(self, env: Mapping[str, int]) -> int:
        return max(op.evaluate(env) for op in self.operands)

    def substitute(self, var: str, replacement: IntLike) -> "AffineLowerBound":
        return AffineLowerBound(*[op.substitute(var, replacement) for op in self.operands])

    def rename(self, mapping: Mapping[str, str]) -> "AffineLowerBound":
        return AffineLowerBound(*[op.rename(mapping) for op in self.operands])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AffineLowerBound) and set(self.operands) == set(other.operands)

    def __hash__(self) -> int:
        return hash(("max", frozenset(self.operands)))

    def __repr__(self) -> str:
        if self.is_plain:
            return repr(self.operands[0])
        return "max(" + ", ".join(repr(op) for op in self.operands) + ")"


def affine_max(a: IntLike, b: IntLike) -> AffineLowerBound:
    """Build ``max(a, b)``, simplifying when both are constants."""
    a = Affine.wrap(a)
    b = Affine.wrap(b)
    if a.is_constant and b.is_constant:
        return AffineLowerBound(Affine(max(a.const, b.const)))
    if a == b:
        return AffineLowerBound(a)
    return AffineLowerBound(a, b)
