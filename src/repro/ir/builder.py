"""Ergonomic construction of loop-nest programs.

The builder lets kernels be written close to the paper's pseudocode::

    b = LoopBuilder("transpose_naive")
    mat = b.array("mat", DType.F64, (n, n))
    with b.loop("i", 0, n) as i:
        with b.loop("j", i + 1, n) as j:
            b.local("t", mat[i, j])
            b.store(mat, (i, j), mat[j, i])
            b.store(mat, (j, i), b.ref("t"))
    program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import IRError
from repro.ir.affine import Affine
from repro.ir.expr import ExprLike, Load, LocalRef
from repro.ir.program import Array, Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store
from repro.ir.types import DType


class ArrayHandle:
    """Wraps an :class:`Array` so ``arr[i, j]`` builds a :class:`Load`."""

    __slots__ = ("array",)

    def __init__(self, array: Array):
        self.array = array

    def __getitem__(self, indices) -> Load:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return Load(self.array, [_as_affine(ix) for ix in indices])

    @property
    def name(self) -> str:
        return self.array.name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.array.shape


def _as_affine(value) -> Affine:
    if isinstance(value, Affine):
        return value
    if isinstance(value, int):
        return Affine(value)
    raise IRError(f"array subscripts must be affine, got {value!r}")


class LoopBuilder:
    """Imperative builder producing an immutable :class:`Program`."""

    def __init__(self, name: str):
        self.name = name
        self._arrays: Dict[str, Array] = {}
        self._stack: List[List[Stmt]] = [[]]
        self._built = False

    # -- declarations ------------------------------------------------------

    def array(
        self,
        name: str,
        dtype: DType,
        shape: Sequence[int],
        scope: str = "global",
        data: Optional[np.ndarray] = None,
    ) -> ArrayHandle:
        """Declare an array and return a subscriptable handle."""
        if name in self._arrays:
            raise IRError(f"array {name!r} already declared")
        arr = Array(name, dtype, shape, scope=scope, data=data)
        self._arrays[name] = arr
        return ArrayHandle(arr)

    def constant_array(self, name: str, data: np.ndarray) -> ArrayHandle:
        """Declare a global array initialized with fixed contents."""
        data = np.asarray(data)
        from repro.ir.types import from_numpy

        return self.array(name, from_numpy(data.dtype), data.shape, data=data)

    # -- structure ---------------------------------------------------------

    @contextlib.contextmanager
    def loop(
        self,
        var: str,
        lo,
        hi,
        step: int = 1,
        parallel: bool = False,
        schedule: str = "static",
        chunk: Optional[int] = None,
    ):
        """Open a loop; yields the loop variable as an :class:`Affine`."""
        self._stack.append([])
        try:
            yield Affine.var(var)
        finally:
            body = Block(self._stack.pop())
            self._emit(
                For(
                    var,
                    lo,
                    hi,
                    body,
                    step=step,
                    parallel=parallel,
                    schedule=schedule,
                    chunk=chunk,
                )
            )

    def parallel_loop(self, var: str, lo, hi, step: int = 1, schedule: str = "static", chunk=None):
        return self.loop(var, lo, hi, step=step, parallel=True, schedule=schedule, chunk=chunk)

    # -- leaves --------------------------------------------------------------

    def store(self, target: Union[ArrayHandle, Array], indices, value: ExprLike, accumulate: bool = False) -> None:
        array = target.array if isinstance(target, ArrayHandle) else target
        if not isinstance(indices, (tuple, list)):
            indices = (indices,)
        self._emit(Store(array, [_as_affine(ix) for ix in indices], value, accumulate))

    def accumulate(self, target, indices, value: ExprLike) -> None:
        """``target[indices] += value`` (the blur's row accumulation)."""
        self.store(target, indices, value, accumulate=True)

    def local(self, name: str, value: ExprLike, accumulate: bool = False) -> LocalRef:
        """Assign a scalar local; returns a reference for later reads."""
        self._emit(LocalAssign(name, value, accumulate))
        return LocalRef(name)

    def ref(self, name: str) -> LocalRef:
        return LocalRef(name)

    # -- assembly ------------------------------------------------------------

    def _emit(self, stmt: Stmt) -> None:
        if self._built:
            raise IRError("builder already produced its program")
        self._stack[-1].append(stmt)

    def build(self) -> Program:
        """Finalize and return the program."""
        if len(self._stack) != 1:
            raise IRError("unbalanced loop() contexts at build time")
        self._built = True
        body = Block(self._stack[0])
        program = Program(self.name, body)
        declared = {a.name for a in self._arrays.values()}
        used = {a.name for a in program.arrays}
        missing = used - declared
        if missing:
            raise IRError(f"arrays used but not declared through this builder: {missing}")
        # Keep declared-but-unused arrays too (e.g. output images whose
        # borders a kernel never writes are still part of the footprint).
        program.arrays = list(self._arrays.values())
        return program
