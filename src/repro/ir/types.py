"""Scalar data types used by the loop-nest IR.

The kernels in the paper use ``double`` (matrix transposition, STREAM) and
``float`` (Gaussian blur, where pixel intensities are converted to float).
Integer types exist for index computations and for the RISC-V backend.
"""

from __future__ import annotations

import enum

import numpy as np


class DType(enum.Enum):
    """A scalar element type with a fixed byte width."""

    F32 = "f32"
    F64 = "f64"
    I8 = "i8"
    I16 = "i16"
    I32 = "i32"
    I64 = "i64"
    U8 = "u8"

    @property
    def size(self) -> int:
        """Width of one element in bytes."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DType.F32, DType.F64)

    @property
    def numpy(self) -> np.dtype:
        """The corresponding numpy dtype object."""
        return _NUMPY[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


_SIZES = {
    DType.F32: 4,
    DType.F64: 8,
    DType.I8: 1,
    DType.I16: 2,
    DType.I32: 4,
    DType.I64: 8,
    DType.U8: 1,
}

_NUMPY = {
    DType.F32: np.dtype(np.float32),
    DType.F64: np.dtype(np.float64),
    DType.I8: np.dtype(np.int8),
    DType.I16: np.dtype(np.int16),
    DType.I32: np.dtype(np.int32),
    DType.I64: np.dtype(np.int64),
    DType.U8: np.dtype(np.uint8),
}


def from_numpy(dtype: np.dtype) -> DType:
    """Map a numpy dtype back to the IR :class:`DType`."""
    dtype = np.dtype(dtype)
    for ir_dtype, np_dtype in _NUMPY.items():
        if np_dtype == dtype:
            return ir_dtype
    raise ValueError(f"unsupported numpy dtype {dtype!r}")
