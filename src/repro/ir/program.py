"""Arrays, programs and memory layout.

A :class:`Program` is a named loop nest plus the arrays it touches.  Kernels
are built for *concrete* sizes (like the paper's benchmarks, which compile a
fixed problem size into the binary); parameters are plain Python ints baked
into the affine expressions at construction time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IRError
from repro.ir.stmt import Block, Stmt, walk_stmts
from repro.ir.expr import loads_in
from repro.ir.types import DType

SCOPES = ("global", "local", "register")


class Array:
    """A statically shaped, row-major array.

    ``scope='global'`` arrays live in DRAM and are shared by all cores.
    ``scope='local'`` arrays are per-thread scratch buffers (the manually
    managed cache block of the paper's "Manual_blocking" transpose); the
    layout engine gives each core its own copy.
    ``scope='register'`` arrays model tiny per-thread accumulators that a
    compiler keeps entirely in registers after unrolling (scalar
    replacement): they generate no memory traffic, only arithmetic — the
    3-entry per-channel accumulator of the blur's "Unit-stride" variant is
    the canonical example.
    """

    __slots__ = ("name", "dtype", "shape", "scope", "data")

    def __init__(
        self,
        name: str,
        dtype: DType,
        shape: Sequence[int],
        scope: str = "global",
        data: Optional[np.ndarray] = None,
    ):
        if scope not in SCOPES:
            raise IRError(f"unknown array scope {scope!r}")
        shape = tuple(int(dim) for dim in shape)
        if not shape or any(dim <= 0 for dim in shape):
            raise IRError(f"array {name!r} has invalid shape {shape}")
        if data is not None:
            data = np.asarray(data, dtype=dtype.numpy)
            if data.shape != shape:
                raise IRError(
                    f"initial data shape {data.shape} does not match array "
                    f"shape {shape} for {name!r}"
                )
        self.name = name
        self.dtype = dtype
        self.shape = shape
        self.scope = scope
        self.data = data

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def elements(self) -> int:
        n = 1
        for dim in self.shape:
            n *= dim
        return n

    @property
    def nbytes(self) -> int:
        return self.elements * self.dtype.size

    def strides(self) -> Tuple[int, ...]:
        """Row-major strides, in elements."""
        strides = [1] * self.rank
        for axis in range(self.rank - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.shape[axis + 1]
        return tuple(strides)

    def linearize(self, indices) -> "object":
        """Flatten N-D affine subscripts into one affine element offset."""
        strides = self.strides()
        offset = None
        for index, stride in zip(indices, strides):
            term = index * stride
            offset = term if offset is None else offset + term
        return offset

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"Array({self.name}: {self.dtype.value}[{dims}], {self.scope})"


class Program:
    """A complete kernel: arrays plus a statement tree."""

    def __init__(
        self,
        name: str,
        body: Stmt,
        arrays: Optional[Sequence[Array]] = None,
        meta: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.body = body if isinstance(body, Block) else Block([body])
        if arrays is None:
            arrays = collect_arrays(self.body)
        self.arrays = list(arrays)
        names = [a.name for a in self.arrays]
        if len(set(names)) != len(names):
            raise IRError(f"duplicate array names in program {name!r}: {names}")
        #: Free-form provenance written by passes (e.g. which transforms ran
        #: and whether they were certified); read by the lint checkers.
        self.meta: Dict[str, object] = dict(meta) if meta else {}

    def array(self, name: str) -> Array:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise IRError(f"program {self.name!r} has no array {name!r}")

    @property
    def global_arrays(self) -> List[Array]:
        return [a for a in self.arrays if a.scope == "global"]

    @property
    def local_arrays(self) -> List[Array]:
        return [a for a in self.arrays if a.scope == "local"]

    def footprint_bytes(self) -> int:
        """Total bytes of global arrays (the working set living in DRAM)."""
        return sum(a.nbytes for a in self.global_arrays)

    def with_body(self, body: Stmt, name: Optional[str] = None) -> "Program":
        """A copy of this program with a new body (used by passes)."""
        return Program(name or self.name, body, arrays=None, meta=self.meta)

    def __repr__(self) -> str:
        return f"Program({self.name!r}, arrays={[a.name for a in self.arrays]})"


def collect_arrays(stmt: Stmt) -> List[Array]:
    """All arrays referenced by a statement tree, in first-use order."""
    seen: Dict[str, Array] = {}
    for node in walk_stmts(stmt):
        refs: List[Array] = []
        if hasattr(node, "array"):
            refs.append(node.array)
        if hasattr(node, "value"):
            refs.extend(load.array for load in loads_in(node.value))
        for arr in refs:
            prior = seen.get(arr.name)
            if prior is None:
                seen[arr.name] = arr
            elif prior is not arr:
                raise IRError(f"two distinct arrays named {arr.name!r} in one program")
    return list(seen.values())


class MemoryLayout:
    """Assigns flat byte addresses to every array instance.

    Global arrays get one page-aligned extent each.  Local (per-thread)
    arrays get one cache-line-aligned extent *per core* so different cores'
    scratch buffers never share cache lines (as a real ``malloc``-per-thread
    or stack allocation would behave).
    """

    PAGE = 4096

    def __init__(self, program: Program, num_threads: int = 1, base: int = 0x10000):
        self.program = program
        self.num_threads = max(1, int(num_threads))
        self.base = base
        self._global: Dict[str, int] = {}
        self._local: Dict[Tuple[str, int], int] = {}
        cursor = base
        for arr in program.global_arrays:
            cursor = _align(cursor, self.PAGE)
            self._global[arr.name] = cursor
            cursor += arr.nbytes
        for arr in program.local_arrays:
            for thread in range(self.num_threads):
                cursor = _align(cursor, self.PAGE)
                self._local[(arr.name, thread)] = cursor
                cursor += arr.nbytes
        self.end = _align(cursor, self.PAGE)

    def address_of(self, array: Array, thread: int = 0) -> int:
        """Base byte address of an array instance for a given thread."""
        if array.scope == "register":
            raise IRError(f"register-promoted array {array.name!r} has no address")
        if array.scope == "global":
            return self._global[array.name]
        return self._local[(array.name, thread)]

    @property
    def total_bytes(self) -> int:
        return self.end - self.base


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
