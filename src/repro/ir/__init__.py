"""Affine loop-nest intermediate representation.

This package defines the IR in which every kernel of the paper is written
and on which every optimization of the paper operates:

* :mod:`repro.ir.types` — scalar element types;
* :mod:`repro.ir.affine` — affine index expressions and loop bounds;
* :mod:`repro.ir.expr` / :mod:`repro.ir.stmt` — value expressions and the
  block-structured statement tree;
* :mod:`repro.ir.program` — arrays, programs, memory layout;
* :mod:`repro.ir.builder` — ergonomic construction API;
* :mod:`repro.ir.printer` — C-like pretty printer;
* :mod:`repro.ir.validate` — structural validation run after every pass.
"""

from repro.ir.affine import Affine, AffineBound, AffineLowerBound, affine_max, affine_min
from repro.ir.builder import ArrayHandle, LoopBuilder
from repro.ir.expr import BinOp, Cast, Const, Expr, IndexValue, Load, LocalRef, loads_in, walk_expr
from repro.ir.printer import format_program, format_stmt
from repro.ir.program import Array, MemoryLayout, Program, collect_arrays
from repro.ir.stmt import (
    Block,
    For,
    LocalAssign,
    Stmt,
    Store,
    find_loop,
    loop_nest_vars,
    loops_in,
    map_loops,
    stores_in,
    walk_stmts,
)
from repro.ir.types import DType, from_numpy
from repro.ir.validate import validate_program

__all__ = [
    "Affine",
    "AffineBound",
    "AffineLowerBound",
    "affine_max",
    "affine_min",
    "Array",
    "ArrayHandle",
    "BinOp",
    "Block",
    "Cast",
    "Const",
    "DType",
    "Expr",
    "For",
    "IndexValue",
    "Load",
    "LocalAssign",
    "LocalRef",
    "LoopBuilder",
    "MemoryLayout",
    "Program",
    "Stmt",
    "Store",
    "collect_arrays",
    "find_loop",
    "format_program",
    "format_stmt",
    "from_numpy",
    "loads_in",
    "loop_nest_vars",
    "loops_in",
    "map_loops",
    "stores_in",
    "validate_program",
    "walk_expr",
    "walk_stmts",
]
