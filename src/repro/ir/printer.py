"""Human-readable pretty printer for IR programs.

The output is C-like pseudocode matching the listings in the paper, which
makes it easy to eyeball that a transformed kernel is the variant the paper
describes (``repro.kernels`` doctests rely on this).
"""

from __future__ import annotations

from typing import List

from repro.ir.expr import BinOp, Cast, Const, Expr, IndexValue, Load, LocalRef
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store

INDENT = "  "


def format_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, LocalRef):
        return expr.name
    if isinstance(expr, IndexValue):
        return f"({expr.affine!r})"
    if isinstance(expr, Load):
        subs = "][".join(repr(ix) for ix in expr.indices)
        return f"{expr.array.name}[{subs}]"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({format_expr(expr.lhs)}, {format_expr(expr.rhs)})"
        return f"({format_expr(expr.lhs)} {expr.op} {format_expr(expr.rhs)})"
    if isinstance(expr, Cast):
        return f"({expr.dtype.value}){format_expr(expr.operand)}"
    raise TypeError(f"unknown expression {expr!r}")


def format_stmt(stmt: Stmt, depth: int = 0) -> List[str]:
    pad = INDENT * depth
    if isinstance(stmt, Block):
        lines: List[str] = []
        for child in stmt.stmts:
            lines.extend(format_stmt(child, depth))
        return lines
    if isinstance(stmt, For):
        qualifiers = []
        if stmt.parallel:
            sched = stmt.schedule
            if stmt.chunk is not None:
                sched += f",{stmt.chunk}"
            qualifiers.append(f"parallel({sched})")
        if stmt.vectorized:
            qualifiers.append("vectorized")
        prefix = (" ".join(qualifiers) + " ") if qualifiers else ""
        step = f"; {stmt.var} += {stmt.step}" if stmt.step != 1 else f"; {stmt.var}++"
        header = f"{pad}{prefix}for ({stmt.var} = {stmt.lo!r}; {stmt.var} < {stmt.hi!r}{step}) {{"
        lines = [header]
        lines.extend(format_stmt(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Store):
        subs = "][".join(repr(ix) for ix in stmt.indices)
        op = "+=" if stmt.accumulate else "="
        return [f"{pad}{stmt.array.name}[{subs}] {op} {format_expr(stmt.value)};"]
    if isinstance(stmt, LocalAssign):
        op = "+=" if stmt.accumulate else "="
        return [f"{pad}{stmt.name} {op} {format_expr(stmt.value)};"]
    raise TypeError(f"unknown statement {stmt!r}")


def format_program(program: Program) -> str:
    lines = [f"// program {program.name}"]
    for arr in program.arrays:
        dims = "][".join(str(d) for d in arr.shape)
        scope = "" if arr.scope == "global" else f" /* {arr.scope} */"
        init = " /* initialized */" if arr.data is not None else ""
        lines.append(f"{arr.dtype.value} {arr.name}[{dims}];{scope}{init}")
    lines.extend(format_stmt(program.body))
    return "\n".join(lines)
