"""Statements of the loop-nest IR.

The statement language is deliberately small — a block-structured tree of
``For`` loops around ``Store`` / ``LocalAssign`` leaves — because that is
exactly the shape of the paper's kernels, and a small language keeps every
transformation auditable.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import IRError
from repro.ir.affine import Affine, AffineBound, AffineLowerBound
from repro.ir.expr import ExprLike, rename_expr, substitute_expr, wrap_expr

SCHEDULES = ("static", "dynamic")


class Stmt:
    """Base class of all statements."""

    __slots__ = ()


class Block(Stmt):
    """A sequence of statements executed in order."""

    __slots__ = ("stmts",)

    def __init__(self, stmts: Sequence[Stmt]):
        flat: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Block):
                flat.extend(stmt.stmts)
            elif isinstance(stmt, Stmt):
                flat.append(stmt)
            else:
                raise IRError(f"{stmt!r} is not a statement")
        self.stmts = tuple(flat)


class For(Stmt):
    """A counted loop ``for var in range(lo, hi, step)``.

    Attributes
    ----------
    parallel:
        When true the iterations are distributed over the device's cores
        (the IR analogue of ``#pragma omp parallel for``).
    schedule, chunk:
        OpenMP-style schedule for parallel loops.  ``static`` splits the
        iteration space into one contiguous slab per core; ``dynamic`` hands
        out ``chunk``-sized pieces to whichever core is free — the paper's
        "Dynamic" transpose variant relies on this to balance the triangular
        iteration space.
    vectorized:
        Set by the ``vectorize`` pass on unit-stride innermost loops; the
        timing model then issues vector instead of scalar operations
        (modelling compiler auto-vectorization, which the paper credits for
        the >19x "Memory" speedup on the Xeon).
    """

    __slots__ = ("var", "lo", "hi", "step", "body", "parallel", "schedule", "chunk", "vectorized")

    def __init__(
        self,
        var: str,
        lo,
        hi,
        body: Stmt,
        step: int = 1,
        parallel: bool = False,
        schedule: str = "static",
        chunk: Optional[int] = None,
        vectorized: bool = False,
    ):
        if step <= 0:
            raise IRError(f"loop step must be positive, got {step}")
        if schedule not in SCHEDULES:
            raise IRError(f"unknown schedule {schedule!r}")
        self.var = var
        self.lo = AffineLowerBound.wrap(lo)
        self.hi = AffineBound.wrap(hi)
        self.step = int(step)
        self.body = body
        self.parallel = parallel
        self.schedule = schedule
        self.chunk = chunk
        self.vectorized = vectorized

    def with_(self, **updates) -> "For":
        """Functional update — returns a copy with the given fields replaced."""
        kwargs = {
            "var": self.var,
            "lo": self.lo,
            "hi": self.hi,
            "body": self.body,
            "step": self.step,
            "parallel": self.parallel,
            "schedule": self.schedule,
            "chunk": self.chunk,
            "vectorized": self.vectorized,
        }
        kwargs.update(updates)
        return For(**kwargs)

    def trip_count(self, env) -> int:
        """Number of iterations under a binding of enclosing loop variables."""
        lo = self.lo.evaluate(env)
        hi = self.hi.evaluate(env)
        if hi <= lo:
            return 0
        return (hi - lo + self.step - 1) // self.step

    def iter_values(self, env) -> range:
        """The concrete ``range`` of this loop under ``env``."""
        return range(self.lo.evaluate(env), self.hi.evaluate(env), self.step)


class Store(Stmt):
    """``array[indices...] = value`` or ``+= value`` when ``accumulate``."""

    __slots__ = ("array", "indices", "value", "accumulate")

    def __init__(self, array, indices: Sequence, value: ExprLike, accumulate: bool = False):
        indices = tuple(Affine.wrap(ix) for ix in indices)
        if len(indices) != len(array.shape):
            raise IRError(
                f"array {array.name!r} has rank {len(array.shape)}, got "
                f"{len(indices)} subscripts"
            )
        self.array = array
        self.indices = indices
        self.value = wrap_expr(value)
        self.accumulate = accumulate


class LocalAssign(Stmt):
    """``name = value`` (or ``+=``) for a scalar register-resident local.

    Locals model values the compiler keeps in registers (the ``sum``
    accumulator of the blur, the temporary of an in-place swap).  They
    generate no memory traffic.
    """

    __slots__ = ("name", "value", "accumulate")

    def __init__(self, name: str, value: ExprLike, accumulate: bool = False):
        self.name = name
        self.value = wrap_expr(value)
        self.accumulate = accumulate


def substitute_stmt(stmt: Stmt, var: str, replacement) -> Stmt:
    """Substitute loop variable ``var`` throughout a statement tree."""
    if isinstance(stmt, Block):
        return Block([substitute_stmt(s, var, replacement) for s in stmt.stmts])
    if isinstance(stmt, For):
        if stmt.var == var:
            raise IRError(f"substitution target {var!r} is shadowed by a loop")
        return stmt.with_(
            lo=stmt.lo.substitute(var, replacement),
            hi=stmt.hi.substitute(var, replacement),
            body=substitute_stmt(stmt.body, var, replacement),
        )
    if isinstance(stmt, Store):
        return Store(
            stmt.array,
            [ix.substitute(var, replacement) for ix in stmt.indices],
            substitute_expr(stmt.value, var, replacement),
            stmt.accumulate,
        )
    if isinstance(stmt, LocalAssign):
        return LocalAssign(stmt.name, substitute_expr(stmt.value, var, replacement), stmt.accumulate)
    raise IRError(f"unknown statement {stmt!r}")


def rename_stmt(stmt: Stmt, mapping) -> Stmt:
    """Rename loop variables (both binders and uses) in a statement tree."""
    if isinstance(stmt, Block):
        return Block([rename_stmt(s, mapping) for s in stmt.stmts])
    if isinstance(stmt, For):
        return stmt.with_(
            var=mapping.get(stmt.var, stmt.var),
            lo=stmt.lo.rename(mapping),
            hi=stmt.hi.rename(mapping),
            body=rename_stmt(stmt.body, mapping),
        )
    if isinstance(stmt, Store):
        return Store(
            stmt.array,
            [ix.rename(mapping) for ix in stmt.indices],
            rename_expr(stmt.value, mapping),
            stmt.accumulate,
        )
    if isinstance(stmt, LocalAssign):
        return LocalAssign(stmt.name, rename_expr(stmt.value, mapping), stmt.accumulate)
    raise IRError(f"unknown statement {stmt!r}")


def walk_stmts(stmt: Stmt) -> Iterator[Stmt]:
    """Yield ``stmt`` and every nested statement, pre-order."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_stmts(child)
    elif isinstance(stmt, For):
        yield from walk_stmts(stmt.body)


def loops_in(stmt: Stmt) -> Iterator[For]:
    for node in walk_stmts(stmt):
        if isinstance(node, For):
            yield node


def stores_in(stmt: Stmt) -> Iterator[Store]:
    for node in walk_stmts(stmt):
        if isinstance(node, Store):
            yield node


def find_loop(stmt: Stmt, var: str) -> For:
    """Find the unique loop binding ``var``; raises if absent."""
    found = [loop for loop in loops_in(stmt) if loop.var == var]
    if not found:
        raise IRError(f"no loop over {var!r} in statement tree")
    if len(found) > 1:
        raise IRError(f"multiple loops bind {var!r}")
    return found[0]


def map_loops(stmt: Stmt, fn) -> Stmt:
    """Rebuild a statement tree applying ``fn`` to every ``For`` bottom-up.

    ``fn`` receives a ``For`` whose body has already been processed and
    returns a replacement statement.
    """
    if isinstance(stmt, Block):
        return Block([map_loops(s, fn) for s in stmt.stmts])
    if isinstance(stmt, For):
        rebuilt = stmt.with_(body=map_loops(stmt.body, fn))
        out = fn(rebuilt)
        if not isinstance(out, Stmt):
            raise IRError("map_loops callback must return a statement")
        return out
    return stmt


def loop_nest_vars(stmt: Stmt) -> Tuple[str, ...]:
    """Variables of the outermost perfect loop nest, outside-in."""
    out: List[str] = []
    node = stmt
    while True:
        if isinstance(node, Block) and len(node.stmts) == 1:
            node = node.stmts[0]
            continue
        if isinstance(node, For):
            out.append(node.var)
            node = node.body
            continue
        return tuple(out)
