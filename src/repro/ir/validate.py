"""Structural validation of IR programs.

``validate_program`` is run by the pass manager after every transformation,
so a buggy pass fails loudly instead of producing silently wrong traces.

Checks performed:

* every loop variable is bound exactly once on any path (no shadowing);
* every variable used in bounds or subscripts is in scope;
* every scalar local is assigned before it is read;
* subscripts of constant-shape arrays stay in bounds for the loop ranges
  that are statically evaluable (interval analysis over the affine forms);
* parallel loops are not nested inside other parallel loops (the paper's
  kernels use a single level of OpenMP parallelism).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import ValidationError
from repro.ir.affine import Affine, AffineBound
from repro.ir.expr import Expr, IndexValue, Load, LocalRef, walk_expr
from repro.ir.program import Program
from repro.ir.stmt import Block, For, LocalAssign, Stmt, Store

Interval = Tuple[int, int]  # inclusive bounds


def _affine_range(expr: Affine, ranges: Dict[str, Interval]) -> Optional[Interval]:
    """Interval of an affine expression given variable intervals."""
    lo = hi = expr.const
    for var, coeff in expr.terms.items():
        interval = ranges.get(var)
        if interval is None:
            return None
        vlo, vhi = interval
        if coeff >= 0:
            lo += coeff * vlo
            hi += coeff * vhi
        else:
            lo += coeff * vhi
            hi += coeff * vlo
    return lo, hi


def _bound_max(bound: AffineBound, ranges: Dict[str, Interval]) -> Optional[int]:
    """A safe upper bound of ``min(...)`` — min of the operand maxima."""
    maxima = []
    for op in bound.operands:
        interval = _affine_range(op, ranges)
        if interval is None:
            return None
        maxima.append(interval[1])
    return min(maxima)


def _bound_min(bound, ranges: Dict[str, Interval]) -> Optional[int]:
    """A safe lower bound of ``max(...)`` — max of the operand minima."""
    minima = []
    for op in bound.operands:
        interval = _affine_range(op, ranges)
        if interval is None:
            return None
        minima.append(interval[0])
    return max(minima)


class _Validator:
    def __init__(self, program: Program):
        self.program = program
        self.errors = []

    def error(self, message: str) -> None:
        self.errors.append(message)

    def run(self) -> None:
        self._stmt(
            self.program.body,
            ranges={},
            scope=set(),
            locals_defined=set(),
            in_parallel=False,
        )
        if self.errors:
            raise ValidationError(
                f"program {self.program.name!r} failed validation:\n  "
                + "\n  ".join(self.errors)
            )

    # -- helpers -----------------------------------------------------------

    def _check_scope(self, expr: Affine, scope: Set[str], what: str) -> None:
        for var in expr.variables:
            if var not in scope:
                self.error(f"{what} uses unbound variable {var!r}")

    def _check_subscripts(self, array, indices, ranges, scope) -> None:
        for axis, (index, dim) in enumerate(zip(indices, array.shape)):
            self._check_scope(index, scope, f"subscript of {array.name!r}")
            interval = _affine_range(index, ranges)
            if interval is None:
                continue
            lo, hi = interval
            if lo < 0 or hi >= dim:
                self.error(
                    f"subscript {index!r} of {array.name!r} axis {axis} may "
                    f"reach [{lo}, {hi}] outside [0, {dim - 1}]"
                )

    def _expr(self, expr: Expr, ranges, scope, locals_defined: Set[str]) -> None:
        for node in walk_expr(expr):
            if isinstance(node, Load):
                self._check_subscripts(node.array, node.indices, ranges, scope)
            elif isinstance(node, LocalRef):
                if node.name not in locals_defined:
                    self.error(f"local {node.name!r} read before assignment")
            elif isinstance(node, IndexValue):
                self._check_scope(node.affine, scope, "index value")

    # -- statement walk ------------------------------------------------------

    def _stmt(
        self,
        stmt: Stmt,
        ranges: Dict[str, Interval],
        scope: Set[str],
        locals_defined: Set[str],
        in_parallel: bool,
    ) -> None:
        if isinstance(stmt, Block):
            for child in stmt.stmts:
                self._stmt(child, ranges, scope, locals_defined, in_parallel)
            return
        if isinstance(stmt, For):
            if stmt.var in scope:
                self.error(f"loop variable {stmt.var!r} shadows an enclosing binding")
            if stmt.parallel and in_parallel:
                self.error(f"parallel loop {stmt.var!r} nested inside a parallel loop")
            for op in stmt.lo.operands:
                self._check_scope(op, scope, f"lower bound of loop {stmt.var!r}")
            for op in stmt.hi.operands:
                self._check_scope(op, scope, f"upper bound of loop {stmt.var!r}")
            lo_min = _bound_min(stmt.lo, ranges)
            hi_max = _bound_max(stmt.hi, ranges)
            inner = dict(ranges)
            if lo_min is not None and hi_max is not None:
                var_lo = lo_min
                if hi_max - 1 < var_lo:
                    return  # statically zero-trip: the body never runs
                span = hi_max - 1 - var_lo
                var_hi = var_lo + (span // stmt.step) * stmt.step
                inner[stmt.var] = (var_lo, var_hi)
            self._stmt(
                stmt.body,
                inner,
                scope | {stmt.var},
                set(locals_defined),
                in_parallel or stmt.parallel,
            )
            return
        if isinstance(stmt, Store):
            self._check_subscripts(stmt.array, stmt.indices, ranges, scope)
            self._expr(stmt.value, ranges, scope, locals_defined)
            return
        if isinstance(stmt, LocalAssign):
            if stmt.accumulate and stmt.name not in locals_defined:
                self.error(f"local {stmt.name!r} accumulated before assignment")
            self._expr(stmt.value, ranges, scope, locals_defined)
            locals_defined.add(stmt.name)
            return
        self.error(f"unknown statement type {type(stmt).__name__}")


def validate_program(program: Program) -> Program:
    """Validate; returns the program unchanged so calls can be chained."""
    _Validator(program).run()
    return program
