"""repro — reproduction of "Case Study for Running Memory-Bound Kernels on
RISC-V CPUs" (PACT 2023).

The package is a vertical slice of the systems the paper depends on:

* an affine loop-nest IR and compiler passes (:mod:`repro.ir`,
  :mod:`repro.transforms`, :mod:`repro.analysis`);
* a reference interpreter and symbolic trace generator (:mod:`repro.exec`);
* a trace-driven memory-hierarchy simulator (:mod:`repro.memsim`) and
  timing model (:mod:`repro.timing`);
* models of the paper's four devices (:mod:`repro.devices`);
* the STREAM / transpose / Gaussian-blur kernel suites
  (:mod:`repro.kernels`);
* a RISC-V RV64 assembler, emulator and code generator
  (:mod:`repro.riscv`);
* metrics and figure harnesses (:mod:`repro.metrics`,
  :mod:`repro.experiments`).

Quickstart::

    import repro

    program = repro.kernels.transpose.blocking(256, block=16)
    device = repro.devices.raspberry_pi_4().scaled(16)
    result = repro.simulate(program, device)
    print(result.seconds, result.timing.bottleneck)
"""

from repro import analysis, devices, exec, experiments, ir, kernels, memsim, metrics, runtime, timing, transforms
from repro.errors import (
    AnalysisError,
    BudgetExceededError,
    DeviceError,
    IRError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    TransformError,
    TransientSimulationError,
    ValidationError,
)
from repro.simulate import SimulationResult, has_parallel_loop, simulate

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "BudgetExceededError",
    "DeviceError",
    "IRError",
    "OutOfMemoryError",
    "ReproError",
    "SimulationError",
    "SimulationResult",
    "TransformError",
    "TransientSimulationError",
    "ValidationError",
    "analysis",
    "devices",
    "exec",
    "experiments",
    "has_parallel_loop",
    "ir",
    "kernels",
    "memsim",
    "metrics",
    "runtime",
    "simulate",
    "timing",
    "transforms",
]
