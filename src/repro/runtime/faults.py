"""Deterministic fault injection for the experiment runtime.

Every recovery path in :mod:`repro.runtime` — cache quarantine, retry
with backoff, deadline expiry — must be provable under test, so this
module gives the chaos suite (and the CI chaos job) a single hook point
to inject faults into the runner's execution path.

Faults are described by a comma-separated spec, either installed through
the API or read from the ``REPRO_FAULTS`` environment variable::

    REPRO_FAULTS=cache_corrupt,sim_flaky:0.3,sim_hang

Supported faults:

``cache_corrupt``
    After every cache write, overwrite the cache file with garbage so the
    next load exercises the quarantine-and-rebuild path.
``sim_flaky:<x>``
    Inject :class:`~repro.errors.TransientSimulationError` into simulate
    calls.  ``x >= 1`` fails the first ``int(x)`` attempts of each run
    key deterministically (retry-until-success); ``0 < x < 1`` fails each
    attempt with probability ``x`` using a seeded RNG.
``sim_hang[:<seconds>]``
    Sleep inside each simulate call (default 0.25 s) so a supervisor
    deadline shorter than that expires.
``tracegen_slow[:<seconds>]``
    Sleep at the top of every trace-generation stream (default 0.05 s).
    A pure, attributable slowdown of one pipeline phase — the bench
    gate's tests inject it to prove a flagged regression names
    *tracegen* rather than a bare total.
``seed:<n>``
    Seed for the probabilistic faults (default 0), keeping chaos runs
    reproducible.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import TransientSimulationError

ENV_VAR = "REPRO_FAULTS"
DEFAULT_HANG_SECONDS = 0.25
DEFAULT_TRACEGEN_SLOW_SECONDS = 0.05


@dataclass(frozen=True)
class FaultPlan:
    """Parsed fault spec; an all-defaults plan injects nothing."""

    cache_corrupt: bool = False
    sim_flaky: float = 0.0
    sim_hang: float = 0.0
    tracegen_slow: float = 0.0
    seed: int = 0

    @property
    def any_active(self) -> bool:
        return (
            self.cache_corrupt
            or self.sim_flaky > 0
            or self.sim_hang > 0
            or self.tracegen_slow > 0
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``name[:value],...`` spec; raises ValueError on junk."""
        fields: Dict[str, Union[bool, float, int]] = {}
        for token in (spec or "").split(","):
            token = token.strip()
            if not token:
                continue
            name, _, value = token.partition(":")
            if name == "cache_corrupt":
                fields["cache_corrupt"] = True
            elif name == "sim_flaky":
                fields["sim_flaky"] = float(value) if value else 0.5
            elif name == "sim_hang":
                fields["sim_hang"] = float(value) if value else DEFAULT_HANG_SECONDS
            elif name == "tracegen_slow":
                fields["tracegen_slow"] = (
                    float(value) if value else DEFAULT_TRACEGEN_SLOW_SECONDS
                )
            elif name == "seed":
                fields["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault {name!r} in spec {spec!r}")
        return cls(**fields)


class FaultInjector:
    """Holds the active plan plus the deterministic per-key state.

    The hooks are called from inside the runner's supervised execution
    (:meth:`before_simulate`) and after each cache write
    (:meth:`after_cache_write`).  With no plan installed and no
    ``REPRO_FAULTS`` in the environment, every hook is a no-op.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._installed: Optional[FaultPlan] = None
        self._env_spec: Optional[str] = None
        self._env_plan = FaultPlan()
        self._rng = random.Random(0)
        self._fail_counts: Dict[str, int] = {}

    # -- plan management ----------------------------------------------------

    def install(self, spec: Union[str, FaultPlan]) -> FaultPlan:
        plan = spec if isinstance(spec, FaultPlan) else FaultPlan.parse(spec)
        with self._lock:
            self._installed = plan
            self._reset_state(plan)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._installed = None
            self._env_spec = None
            self._reset_state(FaultPlan())

    def plan(self) -> FaultPlan:
        """The installed plan, else the plan parsed from ``REPRO_FAULTS``."""
        with self._lock:
            if self._installed is not None:
                return self._installed
            spec = os.environ.get(ENV_VAR, "")
            if spec != self._env_spec:
                self._env_spec = spec
                try:
                    plan = FaultPlan.parse(spec)
                except ValueError:
                    plan = FaultPlan()
                self._reset_state(plan)
            return self._env_plan

    def _reset_state(self, plan: FaultPlan) -> None:
        self._rng = random.Random(plan.seed)
        self._fail_counts = {}
        self._env_plan = plan

    # -- hooks --------------------------------------------------------------

    def before_simulate(self, key: str) -> None:
        """Called at the top of every supervised simulate attempt."""
        plan = self.plan()
        if not plan.any_active:
            return
        if plan.sim_hang > 0:
            time.sleep(plan.sim_hang)
        if plan.sim_flaky >= 1.0:
            with self._lock:
                done = self._fail_counts.get(key, 0)
                if done < int(plan.sim_flaky):
                    self._fail_counts[key] = done + 1
                    raise TransientSimulationError(
                        f"injected transient fault ({done + 1}/{int(plan.sim_flaky)}) for {key}"
                    )
        elif plan.sim_flaky > 0.0:
            with self._lock:
                roll = self._rng.random()
            if roll < plan.sim_flaky:
                raise TransientSimulationError(
                    f"injected transient fault (p={plan.sim_flaky}) for {key}"
                )

    def before_tracegen(self) -> None:
        """Called at the top of every per-core trace-generation stream."""
        plan = self.plan()
        if plan.tracegen_slow > 0:
            time.sleep(plan.tracegen_slow)

    def after_cache_write(self, path: str) -> None:
        """Called after every successful cache write."""
        plan = self.plan()
        if plan.cache_corrupt and path and os.path.exists(path):
            try:
                with open(path, "w") as fh:
                    fh.write('{"schema": "corrupted-by-fault-injection"')
            except OSError:
                pass


_INJECTOR = FaultInjector()


def install_faults(spec: Union[str, FaultPlan]) -> FaultPlan:
    """Install a fault plan for this process (overrides ``REPRO_FAULTS``)."""
    return _INJECTOR.install(spec)


def clear_faults() -> None:
    """Remove any installed plan and forget cached env state."""
    _INJECTOR.clear()


def active_plan() -> FaultPlan:
    """The plan currently in force (installed, else from the environment)."""
    return _INJECTOR.plan()


def before_simulate(key: str) -> None:
    _INJECTOR.before_simulate(key)


def before_tracegen() -> None:
    _INJECTOR.before_tracegen()


def after_cache_write(path: str) -> None:
    _INJECTOR.after_cache_write(path)
