"""Resilient on-disk run cache: versioned, checksummed, atomic.

Replaces the runner's old ad-hoc JSON blob.  The file layout is::

    {
      "schema": 2,
      "records": {
        "v2:[\"fig2\",\"Naive\",512,...]": {
          "digest": "<sha256 prefix of the record>",
          "record": {...RunRecord fields...}
        }
      }
    }

Robustness rules, in order:

* a file that does not parse (or is not a JSON object) is **quarantined**
  — renamed to ``<path>.corrupt-<ts>`` — and the cache rebuilds from
  empty instead of crashing or silently starting over;
* a parseable file with a different (or missing) schema version is
  **invalidated**: its records are dropped, no quarantine;
* a record whose integrity digest does not match, or whose fields no
  longer line up with the expected dataclass fields, is dropped
  individually (no ``RunRecord(**dict)`` ``TypeError``);
* writes are atomic (temp file in the same directory + ``os.replace``)
  and write failures are logged, never silently swallowed.

Cross-process safety (the parallel figure pipeline runs one cache file
from many worker processes):

* :meth:`RunCache.save` takes the cache-level ``O_EXCL`` lockfile
  (stale locks are reclaimed) and **merges** the on-disk records it does
  not hold in memory before the atomic rename, so concurrent writers
  cannot lose each other's records;
* :meth:`RunCache.reload` re-reads one key from disk, giving a worker
  visibility into records a sibling worker persisted after this
  process's initial load;
* :meth:`RunCache.key_lock` hands out a per-key lockfile under
  ``<path>.locks/`` so two processes never simulate the same key
  concurrently (dogpile protection).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import Any, Dict, FrozenSet, Optional

from repro.profiling import tracer
from repro.runtime import faults
from repro.runtime.locks import FileLock

LOG = logging.getLogger("repro.runtime.cache")

CACHE_SCHEMA_VERSION = 2


def _jsonable(value: Any) -> Any:
    """Tuples become lists so the key round-trips through JSON."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def canonical_key(key: Any) -> str:
    """Stable, version-prefixed serialization of a run key.

    Unlike ``repr(key)``, this does not depend on dataclass reprs or
    Python-version formatting details, and the ``v<schema>:`` prefix lets
    a format bump invalidate old entries wholesale.
    """
    payload = json.dumps(_jsonable(key), sort_keys=True, separators=(",", ":"), default=str)
    return f"v{CACHE_SCHEMA_VERSION}:{payload}"


def record_digest(record: Dict[str, Any]) -> str:
    """Short content digest used as the per-record integrity check."""
    payload = json.dumps(_jsonable(record), sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RunCache:
    """Versioned, checksummed key→record store backed by one JSON file."""

    def __init__(
        self,
        path: Optional[str],
        expected_fields: Optional[FrozenSet[str]] = None,
    ):
        self.path = path
        self.expected_fields = frozenset(expected_fields) if expected_fields else None
        self.records: Dict[str, Dict[str, Any]] = {}
        self.dropped = 0            # stale/invalid records discarded at load
        self.quarantined: Optional[str] = None
        self._load()

    # -- load ----------------------------------------------------------------

    def _load(self) -> None:
        if not self.path or not os.path.exists(self.path):
            return
        with tracer.span("cache.load", cat="cache", path=self.path):
            self._load_file()

    def _load_file(self) -> None:
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except OSError as exc:
            LOG.warning("run cache %s unreadable (%s); starting empty", self.path, exc)
            return
        except ValueError:
            self._quarantine("does not parse as JSON")
            return
        if not isinstance(data, dict):
            self._quarantine("top level is not a JSON object")
            return
        if data.get("schema") != CACHE_SCHEMA_VERSION:
            # Legacy or future format: parseable but stale — invalidate.
            stale = data.get("records", data)
            self.dropped += len(stale) if isinstance(stale, dict) else 0
            LOG.warning(
                "run cache %s has schema %r (want %d); invalidating %d records",
                self.path, data.get("schema"), CACHE_SCHEMA_VERSION, self.dropped,
            )
            return
        raw = data.get("records")
        if not isinstance(raw, dict):
            self._quarantine("'records' is not a JSON object")
            return
        for key, entry in raw.items():
            if self._valid_entry(key, entry):
                self.records[key] = entry
            else:
                self.dropped += 1
        if self.dropped:
            LOG.warning(
                "run cache %s: dropped %d stale/corrupt records", self.path, self.dropped
            )

    def _valid_entry(self, key: str, entry: Any) -> bool:
        if not (isinstance(key, str) and key.startswith(f"v{CACHE_SCHEMA_VERSION}:")):
            return False
        if not isinstance(entry, dict):
            return False
        record = entry.get("record")
        if not isinstance(record, dict):
            return False
        if self.expected_fields is not None and set(record) != self.expected_fields:
            return False
        return entry.get("digest") == record_digest(record)

    def _quarantine(self, why: str) -> None:
        ts = int(time.time())
        dest = f"{self.path}.corrupt-{ts}"
        suffix = 0
        while os.path.exists(dest):
            suffix += 1
            dest = f"{self.path}.corrupt-{ts}.{suffix}"
        try:
            os.replace(self.path, dest)
        except OSError as exc:
            LOG.warning("run cache %s corrupt (%s) but quarantine failed: %s", self.path, why, exc)
            return
        self.quarantined = dest
        LOG.warning("run cache %s corrupt (%s); quarantined to %s", self.path, why, dest)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self.records.get(key)
        return entry["record"] if entry else None

    def put(self, key: str, record: Dict[str, Any], save: bool = True) -> None:
        """Store a record; ``save=False`` defers persistence (used when
        adopting records another process already wrote to disk)."""
        self.records[key] = {"digest": record_digest(record), "record": record}
        if save:
            self.save()

    # -- cross-process views -------------------------------------------------

    def _read_disk_records(self) -> Dict[str, Dict[str, Any]]:
        """Valid entries currently on disk; empty on any problem.

        Unlike :meth:`_load_file` this never quarantines or warns — it is
        the quiet merge/reload view used while other processes may be
        writing concurrently.
        """
        if not self.path:
            return {}
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA_VERSION:
            return {}
        raw = data.get("records")
        if not isinstance(raw, dict):
            return {}
        return {k: v for k, v in raw.items() if self._valid_entry(k, v)}

    def reload(self, key: str) -> Optional[Dict[str, Any]]:
        """Re-read ``key`` from disk (a sibling process may have written
        it after our load); adopts and returns the record on a hit."""
        if not self.path or key in self.records:
            return self.get(key)
        entry = self._read_disk_records().get(key)
        if entry is None:
            return None
        self.records[key] = entry
        return entry["record"]

    def key_lock(self, key: str) -> Optional[FileLock]:
        """A per-key cross-process lock (``None`` for a memory-only cache).

        The lockfile name is the key's digest so arbitrarily long or
        slash-containing keys stay filesystem-safe.
        """
        if not self.path:
            return None
        directory = f"{os.path.abspath(self.path)}.locks"
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            LOG.warning("lock directory %s not creatable: %s", directory, exc)
            return None
        name = hashlib.sha256(key.encode()).hexdigest()[:24]
        return FileLock(os.path.join(directory, f"{name}.lock"))

    # -- save ----------------------------------------------------------------

    def save(self) -> None:
        """Locked merge + atomic write.

        Holding the cache-level lockfile, on-disk records this process
        does not hold in memory are merged in first (another worker may
        have saved since our load), then the whole store is written to a
        temp file and atomically renamed over the cache.  If the lock
        cannot be taken the write still happens — ``os.replace`` keeps it
        atomic, we merely risk racing another writer's merge.
        """
        if not self.path:
            return
        with tracer.span("cache.save", cat="cache", path=self.path, records=len(self.records)):
            lock = FileLock(f"{self.path}.lock", timeout_s=10.0)
            locked = lock.acquire()
            if not locked:
                LOG.warning("cache lock %s.lock busy; saving without it", self.path)
            try:
                for key, entry in self._read_disk_records().items():
                    self.records.setdefault(key, entry)
                self._save_file()
            finally:
                if locked:
                    lock.release()

    def _save_file(self) -> None:
        payload = {"schema": CACHE_SCHEMA_VERSION, "records": self.records}
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            LOG.warning("run cache %s not saved: %s", self.path, exc)
            return
        faults.after_cache_write(self.path)
