"""Resilient on-disk run cache: versioned, checksummed, atomic.

Replaces the runner's old ad-hoc JSON blob.  The file layout is::

    {
      "schema": 2,
      "records": {
        "v2:[\"fig2\",\"Naive\",512,...]": {
          "digest": "<sha256 prefix of the record>",
          "record": {...RunRecord fields...}
        }
      }
    }

Robustness rules, in order:

* a file that does not parse (or is not a JSON object) is **quarantined**
  — renamed to ``<path>.corrupt-<ts>`` — and the cache rebuilds from
  empty instead of crashing or silently starting over;
* a parseable file with a different (or missing) schema version is
  **invalidated**: its records are dropped, no quarantine;
* a record whose integrity digest does not match, or whose fields no
  longer line up with the expected dataclass fields, is dropped
  individually (no ``RunRecord(**dict)`` ``TypeError``);
* writes are atomic (temp file in the same directory + ``os.replace``)
  and write failures are logged, never silently swallowed.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import Any, Dict, FrozenSet, Optional

from repro.profiling import tracer
from repro.runtime import faults

LOG = logging.getLogger("repro.runtime.cache")

CACHE_SCHEMA_VERSION = 2


def _jsonable(value: Any) -> Any:
    """Tuples become lists so the key round-trips through JSON."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return value


def canonical_key(key: Any) -> str:
    """Stable, version-prefixed serialization of a run key.

    Unlike ``repr(key)``, this does not depend on dataclass reprs or
    Python-version formatting details, and the ``v<schema>:`` prefix lets
    a format bump invalidate old entries wholesale.
    """
    payload = json.dumps(_jsonable(key), sort_keys=True, separators=(",", ":"), default=str)
    return f"v{CACHE_SCHEMA_VERSION}:{payload}"


def record_digest(record: Dict[str, Any]) -> str:
    """Short content digest used as the per-record integrity check."""
    payload = json.dumps(_jsonable(record), sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RunCache:
    """Versioned, checksummed key→record store backed by one JSON file."""

    def __init__(
        self,
        path: Optional[str],
        expected_fields: Optional[FrozenSet[str]] = None,
    ):
        self.path = path
        self.expected_fields = frozenset(expected_fields) if expected_fields else None
        self.records: Dict[str, Dict[str, Any]] = {}
        self.dropped = 0            # stale/invalid records discarded at load
        self.quarantined: Optional[str] = None
        self._load()

    # -- load ----------------------------------------------------------------

    def _load(self) -> None:
        if not self.path or not os.path.exists(self.path):
            return
        with tracer.span("cache.load", cat="cache", path=self.path):
            self._load_file()

    def _load_file(self) -> None:
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except OSError as exc:
            LOG.warning("run cache %s unreadable (%s); starting empty", self.path, exc)
            return
        except ValueError:
            self._quarantine("does not parse as JSON")
            return
        if not isinstance(data, dict):
            self._quarantine("top level is not a JSON object")
            return
        if data.get("schema") != CACHE_SCHEMA_VERSION:
            # Legacy or future format: parseable but stale — invalidate.
            stale = data.get("records", data)
            self.dropped += len(stale) if isinstance(stale, dict) else 0
            LOG.warning(
                "run cache %s has schema %r (want %d); invalidating %d records",
                self.path, data.get("schema"), CACHE_SCHEMA_VERSION, self.dropped,
            )
            return
        raw = data.get("records")
        if not isinstance(raw, dict):
            self._quarantine("'records' is not a JSON object")
            return
        for key, entry in raw.items():
            if self._valid_entry(key, entry):
                self.records[key] = entry
            else:
                self.dropped += 1
        if self.dropped:
            LOG.warning(
                "run cache %s: dropped %d stale/corrupt records", self.path, self.dropped
            )

    def _valid_entry(self, key: str, entry: Any) -> bool:
        if not (isinstance(key, str) and key.startswith(f"v{CACHE_SCHEMA_VERSION}:")):
            return False
        if not isinstance(entry, dict):
            return False
        record = entry.get("record")
        if not isinstance(record, dict):
            return False
        if self.expected_fields is not None and set(record) != self.expected_fields:
            return False
        return entry.get("digest") == record_digest(record)

    def _quarantine(self, why: str) -> None:
        ts = int(time.time())
        dest = f"{self.path}.corrupt-{ts}"
        suffix = 0
        while os.path.exists(dest):
            suffix += 1
            dest = f"{self.path}.corrupt-{ts}.{suffix}"
        try:
            os.replace(self.path, dest)
        except OSError as exc:
            LOG.warning("run cache %s corrupt (%s) but quarantine failed: %s", self.path, why, exc)
            return
        self.quarantined = dest
        LOG.warning("run cache %s corrupt (%s); quarantined to %s", self.path, why, dest)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        entry = self.records.get(key)
        return entry["record"] if entry else None

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self.records[key] = {"digest": record_digest(record), "record": record}
        self.save()

    # -- save ----------------------------------------------------------------

    def save(self) -> None:
        """Atomic write: temp file in the same directory + ``os.replace``."""
        if not self.path:
            return
        with tracer.span("cache.save", cat="cache", path=self.path, records=len(self.records)):
            self._save_file()

    def _save_file(self) -> None:
        payload = {"schema": CACHE_SCHEMA_VERSION, "records": self.records}
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            fd, tmp = tempfile.mkstemp(
                prefix=os.path.basename(self.path) + ".", suffix=".tmp", dir=directory
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(payload, fh, indent=1, sort_keys=True)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError as exc:
            LOG.warning("run cache %s not saved: %s", self.path, exc)
            return
        faults.after_cache_write(self.path)
