"""Cross-process file locks for the experiment runtime.

The parallel figure pipeline (:mod:`repro.runtime.workpool`) runs many
host processes against one on-disk run cache and one JSONL journal, so
both need mutual exclusion that works across processes without any
third-party dependency.  The primitive here is the classic lockfile:

* acquisition creates ``<name>.lock`` with ``O_CREAT | O_EXCL`` — an
  atomic operation on every platform Python supports — and writes the
  holder's pid and timestamp into it for diagnostics;
* a holder that crashed leaves its lockfile behind; a waiter reclaims a
  lock whose file is older than ``stale_after_s`` by deleting it and
  retrying (the deletion itself may race with another waiter, which is
  fine: only one ``O_EXCL`` create wins afterwards);
* acquisition is bounded by ``timeout_s``.  Callers for whom the lock is
  an optimisation rather than a correctness requirement (e.g. the cache's
  merge-save, which is still atomic via ``os.replace`` without it) may
  proceed on timeout; :meth:`FileLock.acquire` just reports ``False``.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Optional

LOG = logging.getLogger("repro.runtime.locks")

#: A lock older than this is presumed to belong to a dead process.
DEFAULT_STALE_AFTER_S = 60.0
DEFAULT_TIMEOUT_S = 30.0
DEFAULT_POLL_S = 0.01


class FileLock:
    """An ``O_EXCL`` lockfile with stale-lock reclaim.

    Usable as a context manager; ``with FileLock(path):`` raises
    :class:`TimeoutError` if the lock cannot be taken in time, while the
    explicit :meth:`acquire` / :meth:`release` API lets callers choose to
    continue without it.
    """

    def __init__(
        self,
        path: str,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
    ):
        self.path = path
        self.stale_after_s = stale_after_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False

    # -- core protocol -------------------------------------------------------

    def _try_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError as exc:
            # An unwritable directory etc.: treat as "lock unavailable"
            # rather than crashing the experiment pipeline.
            LOG.warning("lockfile %s not creatable: %s", self.path, exc)
            return False
        try:
            os.write(fd, f"{os.getpid()} {time.time():.3f}\n".encode())
        finally:
            os.close(fd)
        return True

    def _reclaim_if_stale(self) -> bool:
        """Delete a lockfile whose holder looks dead; True if deleted."""
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return True  # gone already: someone else released/reclaimed it
        if age <= self.stale_after_s:
            return False
        try:
            os.unlink(self.path)
            LOG.warning(
                "reclaimed stale lock %s (%.1fs old > %.1fs)",
                self.path, age, self.stale_after_s,
            )
            return True
        except OSError:
            return True  # lost the reclaim race; retry the create anyway

    def acquire(self, timeout_s: Optional[float] = None) -> bool:
        """Take the lock; ``False`` when ``timeout_s`` elapses first."""
        if self._held:
            return True
        deadline = time.monotonic() + (
            self.timeout_s if timeout_s is None else timeout_s
        )
        while True:
            if self._try_create():
                self._held = True
                return True
            self._reclaim_if_stale()
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError as exc:
            LOG.warning("lockfile %s not released: %s", self.path, exc)

    @property
    def held(self) -> bool:
        return self._held

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "FileLock":
        if not self.acquire():
            raise TimeoutError(f"could not acquire lock {self.path}")
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False
