"""Cross-process file locks for the experiment runtime.

The parallel figure pipeline (:mod:`repro.runtime.workpool`) runs many
host processes against one on-disk run cache and one JSONL journal, so
both need mutual exclusion that works across processes without any
third-party dependency.  The primitive here is the classic lockfile:

* acquisition creates ``<name>.lock`` with ``O_CREAT | O_EXCL`` — an
  atomic operation on every platform Python supports — and writes the
  holder's pid and timestamp into it for diagnostics;
* a holder that crashed leaves its lockfile behind; a waiter reclaims a
  lock whose file is older than ``stale_after_s``.  Reclaim must not
  race: between observing the stale file and deleting it, another waiter
  may already have reclaimed and re-created a *fresh* lock, and a blind
  ``unlink`` would then destroy that fresh lock and let two processes
  hold it.  Reclaim therefore renames the lockfile to a private
  graveyard name first (``rename`` is atomic, exactly one waiter wins),
  verifies the renamed file is the same inode/mtime observed at stat
  time, and only then deletes it; a fresh lock grabbed by mistake is
  put back via ``link`` (which refuses to clobber a newer lock);
* acquisition is bounded by ``timeout_s``.  Callers for whom the lock is
  an optimisation rather than a correctness requirement (e.g. the cache's
  merge-save, which is still atomic via ``os.replace`` without it) may
  proceed on timeout; :meth:`FileLock.acquire` just reports ``False``.
"""

from __future__ import annotations

import itertools
import logging
import os
import time
from typing import Optional

LOG = logging.getLogger("repro.runtime.locks")

#: Distinguishes concurrent graveyard names within one process.
_RECLAIM_SEQ = itertools.count()


def _reclaim_race_window() -> None:
    """Test seam: the instant between observing a stale lock and claiming
    it, where another waiter may reclaim and re-create the lock.  The
    two-waiter regression test monkeypatches this to force the interleave
    deterministically; production code never overrides it."""

#: A lock older than this is presumed to belong to a dead process.
DEFAULT_STALE_AFTER_S = 60.0
DEFAULT_TIMEOUT_S = 30.0
DEFAULT_POLL_S = 0.01


class FileLock:
    """An ``O_EXCL`` lockfile with stale-lock reclaim.

    Usable as a context manager; ``with FileLock(path):`` raises
    :class:`TimeoutError` if the lock cannot be taken in time, while the
    explicit :meth:`acquire` / :meth:`release` API lets callers choose to
    continue without it.
    """

    def __init__(
        self,
        path: str,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
    ):
        self.path = path
        self.stale_after_s = stale_after_s
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._held = False

    # -- core protocol -------------------------------------------------------

    def _try_create(self) -> bool:
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError as exc:
            # An unwritable directory etc.: treat as "lock unavailable"
            # rather than crashing the experiment pipeline.
            LOG.warning("lockfile %s not creatable: %s", self.path, exc)
            return False
        try:
            os.write(fd, f"{os.getpid()} {time.time():.3f}\n".encode())
        finally:
            os.close(fd)
        return True

    def _reclaim_if_stale(self) -> bool:
        """Remove a lockfile whose holder looks dead; True if the path is
        (or already was) free to re-create.

        The naive stat-then-unlink sequence has a TOCTOU hole: another
        waiter can reclaim and re-create the lock between our ``stat``
        and our ``unlink``, and we would then delete its *fresh* lock.
        Instead the stale file is claimed by an atomic rename to a
        process-unique graveyard name — exactly one waiter can win —
        and deleted only if the renamed file still has the identity
        (inode + mtime) captured at stat time.
        """
        try:
            observed = os.stat(self.path)
        except OSError:
            return True  # gone already: someone else released/reclaimed it
        age = time.time() - observed.st_mtime
        if age <= self.stale_after_s:
            return False
        _reclaim_race_window()
        grave = f"{self.path}.reclaim-{os.getpid()}-{next(_RECLAIM_SEQ)}"
        try:
            os.rename(self.path, grave)
        except OSError:
            return True  # lost the claim race; retry the create anyway
        try:
            claimed = os.stat(grave)
        except OSError:
            return True  # grave vanished under us; nothing left to judge
        if (claimed.st_ino, claimed.st_mtime_ns) == (
            observed.st_ino, observed.st_mtime_ns,
        ):
            # Confirmed: the file we grabbed is the stale lock we judged.
            try:
                os.unlink(grave)
            except OSError:
                pass
            LOG.warning(
                "reclaimed stale lock %s (%.1fs old > %.1fs)",
                self.path, age, self.stale_after_s,
            )
            return True
        # We grabbed a *fresh* lock re-created after our stat.  Put it
        # back with link(), which fails rather than clobber yet another
        # lock created in the meantime.
        try:
            os.link(grave, self.path)
            os.unlink(grave)
        except OSError as exc:
            LOG.warning(
                "could not restore fresh lock %s grabbed during reclaim: %s",
                self.path, exc,
            )
            try:
                os.unlink(grave)
            except OSError:
                pass
        return False

    def acquire(self, timeout_s: Optional[float] = None) -> bool:
        """Take the lock; ``False`` when ``timeout_s`` elapses first."""
        if self._held:
            return True
        deadline = time.monotonic() + (
            self.timeout_s if timeout_s is None else timeout_s
        )
        while True:
            if self._try_create():
                self._held = True
                return True
            self._reclaim_if_stale()
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_s)

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            os.unlink(self.path)
        except OSError as exc:
            LOG.warning("lockfile %s not released: %s", self.path, exc)

    @property
    def held(self) -> bool:
        return self._held

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "FileLock":
        if not self.acquire():
            raise TimeoutError(f"could not acquire lock {self.path}")
        return self

    def __exit__(self, *exc) -> bool:
        self.release()
        return False
