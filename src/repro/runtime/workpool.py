"""Multiprocess fan-out for figure/ablation/sweep cells.

The paper's figures are sweeps over (kernel variant × device × scale)
cells, and the cells are embarrassingly parallel — the same OpenMP-style
fan-out the paper itself studies, applied to the simulation pipeline.
:class:`WorkPool` fans picklable tasks out across host processes:

* workers are started with ``multiprocessing.get_context("spawn")`` so
  every worker is a fresh interpreter (no inherited fork state, identical
  behaviour on every platform);
* results are collected **in task order** regardless of which worker
  finished first, so figure output is byte-identical for any worker
  count;
* job count comes from the ``--jobs`` CLI flag or the ``REPRO_JOBS``
  environment variable and defaults to 1, where ``map`` degenerates to a
  plain in-process loop — bit-identical serial behaviour;
* when a profiler tracer is installed in the parent, each task runs
  under a worker-local tracer and its spans are shipped back and merged
  into the parent's trace under the worker's real pid — one Chrome trace
  for the whole fan-out;
* per-cell supervision (:func:`repro.runtime.supervise` retry/deadline)
  and fault injection (``REPRO_FAULTS``) run *inside* the workers, which
  inherit the parent's environment.

Task functions must be module-level (picklable by qualified name) and
their arguments and results picklable.  The pool is lazily created and
reused across :meth:`WorkPool.map` calls; use it as a context manager
(or call :meth:`close`) to reap the workers.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.profiling import tracer

LOG = logging.getLogger("repro.runtime.workpool")

ENV_JOBS = "REPRO_JOBS"

#: Worker-id string recorded in journal entries; empty in the parent
#: process until :func:`_worker_init` tags the worker.
_WORKER_ID = ""

#: Worker incarnation stamp.  The OS reuses pids, so a respawned worker
#: that inherits a dead worker's pid would merge into the same Chrome
#: trace track; the epoch (start time in ns) tells incarnations apart.
_WORKER_EPOCH = 0


def current_worker_id() -> str:
    """The pool worker id of this process ("" in the parent/serial case)."""
    return _WORKER_ID


def current_worker_epoch() -> int:
    """This worker's incarnation stamp (0 in the parent/serial case)."""
    return _WORKER_EPOCH


def jobs_from_env(default: int = 1) -> int:
    """Resolve ``REPRO_JOBS``: a positive int, or ``0`` for all cores."""
    raw = os.environ.get(ENV_JOBS, "")
    if not raw:
        return default
    try:
        jobs = int(raw)
    except ValueError:
        LOG.warning("ignoring non-integer %s=%r", ENV_JOBS, raw)
        return default
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """CLI ``--jobs`` wins; ``None`` falls back to ``REPRO_JOBS``; ``0``
    means all cores."""
    if jobs is None:
        return jobs_from_env()
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def _worker_init() -> None:
    """Runs once in every worker: tag the process for journal entries."""
    global _WORKER_ID, _WORKER_EPOCH
    _WORKER_ID = str(os.getpid())
    _WORKER_EPOCH = time.time_ns()


def _run_task(payload: Tuple[Callable[[Any], Any], Any, bool, Optional[str]]):
    """Execute one task in a worker, optionally under a local tracer.

    Returns ``(result, span_dicts, pid, epoch)`` so the parent can both
    collect the result in task order and merge the worker's profiler
    spans into its own Chrome trace, keyed by worker incarnation.

    ``traceparent`` (the caller's serialized
    :class:`~repro.profiling.tracer.TraceContext`) re-roots the worker's
    spans under the caller's current span: the parsed context is
    activated for the duration of the task, so the worker's root spans
    carry explicit parent links back into the calling process and the
    request assembles into one connected cross-process tree.
    """
    fn, task, traced, traceparent = payload
    ctx = tracer.TraceContext.parse(traceparent)
    if not traced:
        with tracer.activate(ctx):
            return fn(task), None, os.getpid(), _WORKER_EPOCH
    local = tracer.Tracer()
    with tracer.install(local):
        with tracer.activate(ctx):
            result = fn(task)
    return result, local.span_dicts(), os.getpid(), _WORKER_EPOCH


class WorkPool:
    """Fans tasks across spawn processes; deterministic collection order.

    ``jobs <= 1`` (the default) runs every task inline in the calling
    process — no worker, no pickling, bit-identical to the historical
    serial loops.  ``jobs > 1`` lazily starts a reusable spawn pool.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = resolve_jobs(jobs)
        self._pool = None

    @classmethod
    def serial(cls) -> "WorkPool":
        """A pool that always runs inline (ignores ``REPRO_JOBS``)."""
        return cls(jobs=1)

    @property
    def parallel(self) -> bool:
        return self.jobs > 1

    # -- mapping -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every task; results in task order.

        ``fn`` must be a module-level function when the pool is parallel.
        A task that raises inside a worker re-raises here, exactly like
        the serial loop would.
        """
        items: Sequence[Any] = list(tasks)
        if not items:
            return []
        if self.jobs <= 1:
            return [fn(task) for task in items]
        traced = tracer.current() is not None
        traceparent = tracer.current_traceparent()
        payloads = [(fn, task, traced, traceparent) for task in items]
        wrapped = self._get_pool().map(_run_task, payloads)
        results: List[Any] = []
        current = tracer.current()
        for result, spans, pid, epoch in wrapped:
            if spans and current is not None:
                current.absorb(spans, pid=pid, epoch=epoch)
            results.append(result)
        return results

    def apply(self, fn: Callable[[Any], Any], task: Any) -> Any:
        """Run one task (on a worker when parallel) and return its result.

        The blocking single-task counterpart of :meth:`map`, used by the
        serve tier to dispatch individual jobs from executor threads.
        ``multiprocessing.Pool`` is thread-safe, so concurrent ``apply``
        calls from different threads each occupy one worker.
        """
        if self.jobs <= 1:
            return fn(task)
        traced = tracer.current() is not None
        traceparent = tracer.current_traceparent()
        result, spans, pid, epoch = self._get_pool().apply(
            _run_task, ((fn, task, traced, traceparent),)
        )
        current = tracer.current()
        if spans and current is not None:
            current.absorb(spans, pid=pid, epoch=epoch)
        return result

    # -- lifecycle -----------------------------------------------------------

    def _get_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context("spawn")
            self._pool = ctx.Pool(self.jobs, initializer=_worker_init)
            LOG.info("work pool started: %d spawn workers", self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
