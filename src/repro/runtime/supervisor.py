"""Supervised execution: deadlines, bounded retry, structured outcomes.

The paper's own figures embody graceful degradation (the 16384² transpose
bar is simply absent on the Mango Pi), so the experiment stack never
treats a single failed simulate call as fatal.  Every call runs through
:func:`supervise`, which classifies the result into a structured
:class:`Outcome`:

* ``completed`` — the call returned a value;
* ``skipped`` — the workload cannot run here (``OutOfMemoryError``),
  exactly the paper's missing-bar case;
* ``timed_out`` — the call overran its wall-clock deadline
  (``BudgetExceededError``);
* ``failed`` — a transient error persisted past the retry budget, or a
  non-retryable exception escaped.

Transient errors (:class:`~repro.errors.TransientSimulationError`) are
retried with exponential backoff plus deterministic jitter.  Environment
knobs: ``REPRO_RETRIES`` (max attempts), ``REPRO_RETRY_BASE`` (base
backoff seconds) and ``REPRO_DEADLINE`` (deadline seconds).

The deadline is a **whole-call budget**: elapsed time — attempts plus
backoff sleeps — is deducted as the call goes, each retry only gets what
is left, and retrying stops early once the remaining budget cannot even
cover the base backoff delay.  A flapping job therefore costs at most
``deadline_s``, never ``max_attempts × deadline_s`` plus backoff.
"""

from __future__ import annotations

import enum
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import BudgetExceededError, OutOfMemoryError, TransientSimulationError


class OutcomeStatus(enum.Enum):
    """Terminal classification of one supervised call."""

    COMPLETED = "completed"
    SKIPPED = "skipped"
    TIMED_OUT = "timed_out"
    FAILED = "failed"


@dataclass
class Outcome:
    """What one supervised call produced (value or structured failure)."""

    status: OutcomeStatus
    value: Any = None
    error: Optional[BaseException] = None
    reason: str = ""
    attempts: int = 1
    duration_s: float = 0.0
    label: str = ""

    @property
    def ok(self) -> bool:
        return self.status is OutcomeStatus.COMPLETED

    def note(self) -> str:
        """One footnote-sized line describing a non-completed outcome."""
        prefix = f"{self.label}: " if self.label else ""
        return f"{prefix}{self.status.value} — {self.reason}"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/deadline budget for supervised calls."""

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25           # fraction of the delay added as jitter
    deadline_s: Optional[float] = None

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy with ``REPRO_RETRIES`` / ``REPRO_RETRY_BASE`` /
        ``REPRO_DEADLINE`` overrides applied.

        Bad values are ignored and numeric values are clamped to
        non-negative — a hostile ``REPRO_RETRY_BASE=-1`` must not reach
        ``time.sleep`` and raise out of the supervisor.  A non-positive
        deadline means "no deadline".
        """

        def _get(name: str, cast, default):
            raw = os.environ.get(name)
            if not raw:
                return default
            try:
                return cast(raw)
            except ValueError:
                return default

        deadline = _get("REPRO_DEADLINE", float, cls.deadline_s)
        if deadline is not None and deadline <= 0:
            deadline = None
        return cls(
            max_attempts=max(1, _get("REPRO_RETRIES", int, cls.max_attempts)),
            base_delay_s=max(0.0, _get("REPRO_RETRY_BASE", float, cls.base_delay_s)),
            deadline_s=deadline,
        )

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry number ``attempt`` (1-based), with jitter."""
        delay = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * rng.random())


def _call_with_deadline(fn: Callable[[], Any], deadline_s: Optional[float]) -> Any:
    """Run ``fn``; enforce a wall-clock deadline via a worker thread.

    On expiry the worker is abandoned (daemon) and
    :class:`BudgetExceededError` is raised — a pure-Python simulate call
    cannot be preempted, but the sweep moves on.
    """
    if not deadline_s or deadline_s <= 0:
        return fn()
    box: dict = {}
    done = threading.Event()

    def target() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # re-raised in the caller below
            box["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(target=target, name="repro-supervised", daemon=True)
    worker.start()
    if not done.wait(deadline_s):
        raise BudgetExceededError(
            f"supervised call exceeded its {deadline_s:g}s deadline"
        )
    if "error" in box:
        raise box["error"]
    return box.get("value")


def supervise(
    fn: Callable[[], Any],
    policy: Optional[RetryPolicy] = None,
    *,
    label: str = "",
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    on_attempt: Optional[Callable[[int], None]] = None,
) -> Outcome:
    """Run ``fn`` under ``policy`` and return a structured :class:`Outcome`.

    Never raises: every exception is classified.  ``sleep`` and ``rng``
    are injectable for the test-suite (deterministic jitter by default).
    ``on_attempt`` is called with the 1-based attempt number just before
    each try — observers (the serve tier streams these as progress
    events) must not perturb supervision, so its exceptions are swallowed.
    """
    policy = policy or RetryPolicy.from_env()
    rng = rng or random.Random(0)
    start = time.monotonic()
    attempts = 0
    budgeted = policy.deadline_s is not None and policy.deadline_s > 0

    def _finish(status: OutcomeStatus, **kw) -> Outcome:
        return Outcome(
            status,
            attempts=attempts,
            duration_s=time.monotonic() - start,
            label=label,
            **kw,
        )

    def _remaining() -> Optional[float]:
        """Whole-call budget left; the deadline covers every attempt plus
        the backoff between them, not each attempt afresh."""
        if not budgeted:
            return None
        return policy.deadline_s - (time.monotonic() - start)

    while True:
        remaining = _remaining()
        if remaining is not None and remaining <= 0:
            return _finish(
                OutcomeStatus.TIMED_OUT,
                error=BudgetExceededError(
                    f"whole-call deadline of {policy.deadline_s:g}s exhausted "
                    f"after {attempts} attempt{'s' if attempts != 1 else ''}"
                ),
                reason=(
                    f"whole-call deadline of {policy.deadline_s:g}s exhausted "
                    f"after {attempts} attempt{'s' if attempts != 1 else ''}"
                ),
            )
        attempts += 1
        if on_attempt is not None:
            try:
                on_attempt(attempts)
            except Exception:  # noqa: S110 - observers must never break the call
                pass
        try:
            value = _call_with_deadline(fn, remaining)
            return _finish(OutcomeStatus.COMPLETED, value=value)
        except OutOfMemoryError as exc:
            return _finish(
                OutcomeStatus.SKIPPED, error=exc, reason=f"out of memory: {exc}"
            )
        except BudgetExceededError as exc:
            return _finish(OutcomeStatus.TIMED_OUT, error=exc, reason=str(exc))
        except TransientSimulationError as exc:
            if attempts >= policy.max_attempts:
                return _finish(
                    OutcomeStatus.FAILED,
                    error=exc,
                    reason=f"transient failure persisted after {attempts} attempts: {exc}",
                )
            remaining = _remaining()
            if remaining is not None and remaining < max(policy.base_delay_s, 1e-9):
                # The leftover budget cannot cover even the base backoff:
                # another attempt could only time out, so stop here.
                return _finish(
                    OutcomeStatus.FAILED,
                    error=exc,
                    reason=(
                        f"transient failure after {attempts} attempts and the "
                        f"remaining {max(0.0, remaining):.3g}s of the "
                        f"{policy.deadline_s:g}s deadline cannot cover a retry: {exc}"
                    ),
                )
            try:
                delay = policy.backoff(attempts, rng)
                if remaining is not None:
                    delay = min(delay, remaining)
                sleep(max(0.0, delay))
            except Exception as sleep_exc:
                # supervise() must never raise: a broken sleep/backoff
                # (bad injected policy values, interrupted sleep) is a
                # failure of this call, not of the caller.
                return _finish(
                    OutcomeStatus.FAILED,
                    error=sleep_exc,
                    reason=(
                        f"retry backoff failed "
                        f"({type(sleep_exc).__name__}: {sleep_exc}) after: {exc}"
                    ),
                )
        except Exception as exc:
            return _finish(
                OutcomeStatus.FAILED,
                error=exc,
                reason=f"{type(exc).__name__}: {exc}",
            )
