"""Fault-tolerant experiment runtime.

The robustness layer under :mod:`repro.experiments`: long
multi-configuration sweeps must survive crashes, corrupted caches and
injected faults, degrading per-figure-cell instead of dying on the first
exception (the paper itself renders a missing bar where the 16384²
matrix does not fit the Mango Pi's DRAM).

* :mod:`repro.runtime.cache` — versioned, checksummed, atomically
  written run cache with quarantine-and-rebuild corruption handling;
* :mod:`repro.runtime.supervisor` — deadline + bounded-retry supervision
  returning structured ``completed | skipped | timed_out | failed``
  outcomes;
* :mod:`repro.runtime.faults` — deterministic fault injection
  (``REPRO_FAULTS``) used by the chaos test-suite;
* :mod:`repro.runtime.journal` — append-only JSONL journal of every
  attempt, surfaced by ``repro-experiments status``;
* :mod:`repro.runtime.locks` — cross-process ``O_EXCL`` lockfiles with
  stale-lock reclaim, shared by the cache and the journal;
* :mod:`repro.runtime.workpool` — spawn-based multiprocess fan-out of
  figure/ablation/sweep cells (``--jobs`` / ``REPRO_JOBS``) with
  deterministic collection order and merged profiler traces.
"""

from repro.runtime.faults import (
    FaultPlan,
    active_plan,
    clear_faults,
    install_faults,
)
from repro.runtime.cache import (
    CACHE_SCHEMA_VERSION,
    RunCache,
    canonical_key,
    record_digest,
)
from repro.runtime.journal import (
    Journal,
    JournalEntry,
    default_journal_path,
    journal_segments,
    read_events,
    read_journal,
    summarize,
)
from repro.runtime.locks import FileLock
from repro.runtime.supervisor import (
    Outcome,
    OutcomeStatus,
    RetryPolicy,
    supervise,
)
from repro.runtime.workpool import (
    WorkPool,
    current_worker_epoch,
    current_worker_id,
    jobs_from_env,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "FaultPlan",
    "FileLock",
    "Journal",
    "JournalEntry",
    "Outcome",
    "OutcomeStatus",
    "RetryPolicy",
    "RunCache",
    "WorkPool",
    "active_plan",
    "canonical_key",
    "clear_faults",
    "current_worker_epoch",
    "current_worker_id",
    "default_journal_path",
    "install_faults",
    "jobs_from_env",
    "journal_segments",
    "read_events",
    "read_journal",
    "record_digest",
    "summarize",
    "supervise",
]
