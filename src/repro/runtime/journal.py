"""Append-only JSONL run journal.

Every supervised attempt the runner makes — completed, skipped,
timed-out or failed — is appended as one JSON object per line to a
journal file next to the run cache.  The journal is the audit trail for
long multi-configuration sweeps: ``repro-experiments status`` summarizes
it, and failed runs keep their reason even after the process exits.

Line format::

    {"ts": 1754459000.1, "key": "v2:[...]", "outcome": "completed",
     "duration_s": 0.42, "attempts": 1, "error": ""}
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.runtime.supervisor import Outcome

LOG = logging.getLogger("repro.runtime")

JOURNAL_BASENAME = ".repro_journal.jsonl"


@dataclass
class JournalEntry:
    """One attempt's durable facts."""

    ts: float
    key: str
    outcome: str
    duration_s: float
    attempts: int
    error: str = ""


class Journal:
    """Appends entries to a JSONL file; a ``None`` path disables it."""

    def __init__(self, path: Optional[str]):
        self.path = path

    def record(self, key: str, outcome: Outcome) -> None:
        self.append(
            JournalEntry(
                ts=time.time(),
                key=key,
                outcome=outcome.status.value,
                duration_s=round(outcome.duration_s, 6),
                attempts=outcome.attempts,
                error=outcome.reason,
            )
        )

    def append(self, entry: JournalEntry) -> None:
        if not self.path:
            return
        try:
            with open(self.path, "a") as fh:
                fh.write(json.dumps(asdict(entry), sort_keys=True) + "\n")
        except OSError as exc:
            LOG.warning("journal %s not appended: %s", self.path, exc)


def default_journal_path(cache_path: str) -> str:
    """The journal lives under the cache's directory."""
    return os.path.join(os.path.dirname(os.path.abspath(cache_path)), JOURNAL_BASENAME)


def read_journal(path: str) -> List[JournalEntry]:
    """Parse a journal file, skipping unparseable lines (torn writes)."""
    entries: List[JournalEntry] = []
    if not path or not os.path.exists(path):
        return entries
    try:
        with open(path) as fh:
            lines = fh.readlines()
    except OSError as exc:
        LOG.warning("journal %s unreadable: %s", path, exc)
        return entries
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
            entries.append(
                JournalEntry(
                    ts=float(raw["ts"]),
                    key=str(raw["key"]),
                    outcome=str(raw["outcome"]),
                    duration_s=float(raw.get("duration_s", 0.0)),
                    attempts=int(raw.get("attempts", 1)),
                    error=str(raw.get("error", "")),
                )
            )
        except (ValueError, KeyError, TypeError):
            continue
    return entries


def summarize(entries: List[JournalEntry]) -> Dict:
    """Aggregate counts for the ``status`` subcommand."""
    by_outcome: Dict[str, int] = {}
    retries = 0
    duration = 0.0
    failures: List[JournalEntry] = []
    for entry in entries:
        by_outcome[entry.outcome] = by_outcome.get(entry.outcome, 0) + 1
        retries += max(0, entry.attempts - 1)
        duration += entry.duration_s
        if entry.outcome not in ("completed", "cached"):
            failures.append(entry)
    return {
        "total": len(entries),
        "by_outcome": by_outcome,
        "retries": retries,
        "duration_s": duration,
        "failures": failures[-10:],
    }
