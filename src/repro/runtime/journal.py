"""Append-only JSONL run journal.

Every supervised attempt the runner makes — completed, skipped,
timed-out or failed — is appended as one JSON object per line to a
journal file next to the run cache.  The journal is the audit trail for
long multi-configuration sweeps: ``repro-experiments status`` summarizes
it, and failed runs keep their reason even after the process exits.

Line format::

    {"ts": 1754459000.1, "key": "v2:[...]", "outcome": "completed",
     "duration_s": 0.42, "attempts": 1, "error": "", "source": "simulated",
     "worker": "12345"}

``source`` records provenance: ``simulated`` for a fresh supervised run,
``disk-cache`` when the record was served from the persisted run cache
(memory-cache hits within one process are not journalled — they would
flood the file with intra-process memoisation noise).  ``worker`` is the
work-pool worker id (the worker's pid) when the attempt ran inside a
parallel figure pipeline worker, and ``""`` for serial runs.  ``trace``
is the distributed trace id when the attempt ran under an activated
:class:`~repro.profiling.tracer.TraceContext` (serve jobs), else ``""``.

Besides attempt entries the journal carries **wide events**: one JSON
object per interesting state change (job admitted, attempt started,
span closed), tagged ``"type": "event"`` so :func:`read_journal`
skips them and :func:`read_events` collects them.  Wide events are how
the serve tier reconstructs a job's life post-hoc across rotated
segments — they ride the same lock and rotation as attempt entries.

The parallel pipeline appends to one journal from many processes, so
every append holds a cross-process lockfile
(:class:`repro.runtime.locks.FileLock`) around the write — lines can
never tear into each other even on filesystems without atomic
``O_APPEND`` semantics for the line size.

Long-running processes (the ``repro serve`` tier) would grow an
append-only file without bound, so the journal supports size-based
**rotation**: when the active file exceeds ``max_bytes`` after an
append, it is rotated to ``<path>.1`` (shifting ``.1 → .2`` and so on)
under the same cross-process lock, keeping at most ``max_segments``
rotated segments.  ``REPRO_JOURNAL_MAX_BYTES`` (0 disables rotation,
the default for batch runs) and ``REPRO_JOURNAL_SEGMENTS`` configure
it from the environment.  :func:`read_journal` reads across all
segments oldest-first, so ``repro status`` and the serve progress
endpoints see one continuous history.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from repro.profiling import tracer
from repro.runtime.locks import FileLock
from repro.runtime.supervisor import Outcome

LOG = logging.getLogger("repro.runtime.journal")

JOURNAL_BASENAME = ".repro_journal.jsonl"

#: Provenance values for :attr:`JournalEntry.source`.
SOURCE_SIMULATED = "simulated"
SOURCE_DISK_CACHE = "disk-cache"

#: Rotation env knobs; 0 max bytes means "never rotate".
ENV_MAX_BYTES = "REPRO_JOURNAL_MAX_BYTES"
ENV_SEGMENTS = "REPRO_JOURNAL_SEGMENTS"
DEFAULT_MAX_SEGMENTS = 4


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        LOG.warning("ignoring non-integer %s=%r", name, raw)
        return default


@dataclass
class JournalEntry:
    """One attempt's durable facts."""

    ts: float
    key: str
    outcome: str
    duration_s: float
    attempts: int
    error: str = ""
    source: str = SOURCE_SIMULATED
    worker: str = ""
    trace: str = ""


class Journal:
    """Appends entries to a JSONL file; a ``None`` path disables it.

    ``max_bytes``/``max_segments`` bound the on-disk footprint via
    size-based rotation; ``None`` defers to the environment knobs
    (``REPRO_JOURNAL_MAX_BYTES`` / ``REPRO_JOURNAL_SEGMENTS``), whose
    defaults keep rotation off for short-lived batch runs.
    """

    def __init__(
        self,
        path: Optional[str],
        max_bytes: Optional[int] = None,
        max_segments: Optional[int] = None,
    ):
        self.path = path
        self.max_bytes = (
            _env_int(ENV_MAX_BYTES, 0) if max_bytes is None else max(0, int(max_bytes))
        )
        self.max_segments = max(1, (
            _env_int(ENV_SEGMENTS, DEFAULT_MAX_SEGMENTS)
            if max_segments is None else int(max_segments)
        ))

    def record(self, key: str, outcome: Outcome, source: str = SOURCE_SIMULATED) -> None:
        from repro.runtime.workpool import current_worker_id

        ctx = tracer.active_context()
        self.append(
            JournalEntry(
                ts=time.time(),
                key=key,
                outcome=outcome.status.value,
                duration_s=round(outcome.duration_s, 6),
                attempts=outcome.attempts,
                error=outcome.reason,
                source=source,
                worker=current_worker_id(),
                trace=ctx.trace_id if ctx is not None else "",
            )
        )

    def append(self, entry: JournalEntry) -> None:
        if not self.path:
            return
        with tracer.span("journal.append", cat="journal", key=entry.key):
            self._write_line(json.dumps(asdict(entry), sort_keys=True))

    def event(self, fields: Dict[str, Any]) -> None:
        """Append one wide event: arbitrary JSON-able fields plus the
        ``type: "event"`` discriminator and a timestamp.

        Wide events share the attempt entries' lock and rotation, so a
        reader walking the segments sees one interleaved, time-ordered
        history of attempts and events.
        """
        if not self.path:
            return
        payload = dict(fields)
        payload["type"] = "event"
        payload.setdefault("ts", time.time())
        try:
            line = json.dumps(payload, sort_keys=True, default=str)
        except (TypeError, ValueError) as exc:
            LOG.warning("journal event not serializable: %s", exc)
            return
        self._write_line(line)

    def _write_line(self, line: str) -> None:
        """Locked append of one pre-serialized JSONL line (+ rotation)."""
        try:
            lock = FileLock(f"{self.path}.lock", timeout_s=10.0)
            locked = lock.acquire()
            if not locked:
                LOG.warning("journal lock %s.lock busy; appending without it", self.path)
            try:
                with open(self.path, "a") as fh:
                    fh.write(line + "\n")
                    fh.flush()
                    size = fh.tell()
                if self.max_bytes and size > self.max_bytes and locked:
                    # Rotation shifts whole files, so it must happen
                    # under the same lock that serializes appends —
                    # a lockless appender could otherwise write into
                    # a file that is mid-rename.  If we could not
                    # take the lock we simply skip rotating this
                    # time; a later locked append will catch up.
                    self._rotate()
            finally:
                if locked:
                    lock.release()
        except OSError as exc:
            LOG.warning("journal %s not appended: %s", self.path, exc)

    def _rotate(self) -> None:
        """Shift ``path → path.1 → … → path.N``; called under the lock."""
        try:
            os.unlink(f"{self.path}.{self.max_segments}")
        except OSError:
            pass
        for index in range(self.max_segments - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                try:
                    os.replace(source, f"{self.path}.{index + 1}")
                except OSError as exc:
                    LOG.warning("journal segment %s not rotated: %s", source, exc)
        try:
            os.replace(self.path, f"{self.path}.1")
            LOG.info(
                "journal %s rotated (> %d bytes, keeping %d segments)",
                self.path, self.max_bytes, self.max_segments,
            )
        except OSError as exc:
            LOG.warning("journal %s not rotated: %s", self.path, exc)


def default_journal_path(cache_path: str) -> str:
    """The journal lives under the cache's directory."""
    return os.path.join(os.path.dirname(os.path.abspath(cache_path)), JOURNAL_BASENAME)


def journal_segments(path: str) -> List[str]:
    """Existing journal files oldest-first: rotated segments (highest
    index is oldest) followed by the active file."""
    if not path:
        return []
    segments: List[str] = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        segments.append(f"{path}.{index}")
        index += 1
    segments.reverse()
    if os.path.exists(path):
        segments.append(path)
    return segments


def _journal_lines(path: str) -> List[str]:
    """Raw lines across all segments plus the active file, oldest-first."""
    lines: List[str] = []
    for segment in journal_segments(path):
        try:
            with open(segment) as fh:
                lines.extend(fh.readlines())
        except OSError as exc:
            LOG.warning("journal %s unreadable: %s", segment, exc)
    return lines


def read_journal(path: str) -> List[JournalEntry]:
    """Parse a journal (all rotated segments plus the active file,
    oldest-first), skipping unparseable lines (torn writes) and wide
    events (``type: "event"`` — see :func:`read_events`)."""
    entries: List[JournalEntry] = []
    for line in _journal_lines(path):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
            if isinstance(raw, dict) and raw.get("type") == "event":
                continue
            entries.append(
                JournalEntry(
                    ts=float(raw["ts"]),
                    key=str(raw["key"]),
                    outcome=str(raw["outcome"]),
                    duration_s=float(raw.get("duration_s", 0.0)),
                    attempts=int(raw.get("attempts", 1)),
                    error=str(raw.get("error", "")),
                    source=str(raw.get("source", SOURCE_SIMULATED)),
                    worker=str(raw.get("worker", "")),
                    trace=str(raw.get("trace", "")),
                )
            )
        except (ValueError, KeyError, TypeError):
            continue
    return entries


def read_events(
    path: str,
    trace: Optional[str] = None,
    job_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Wide events across rotated segments, oldest-first, optionally
    filtered by trace id and/or serve job id."""
    events: List[Dict[str, Any]] = []
    for line in _journal_lines(path):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except ValueError:
            continue
        if not isinstance(raw, dict) or raw.get("type") != "event":
            continue
        if trace is not None and raw.get("trace") != trace:
            continue
        if job_id is not None and raw.get("job_id") != job_id:
            continue
        events.append(raw)
    return events


def figure_of_key(key: str) -> str:
    """The figure/family tag of a canonical run key.

    Keys look like ``v2:["fig2","Naive",512,...]``; the first list element
    is the family the figure harness chose.  Unparseable or foreign keys
    group under ``"?"``.
    """
    _, _, payload = key.partition(":")
    try:
        decoded = json.loads(payload)
    except ValueError:
        return "?"
    if isinstance(decoded, list) and decoded and isinstance(decoded[0], str):
        return decoded[0]
    return "?"


def percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated percentile of an ascending list (q in 0..1)."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lo = int(position)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = position - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


def duration_quantiles(entries: List[JournalEntry]) -> Dict[str, Dict[str, float]]:
    """Per-figure p50/p95 of *simulated* run durations.

    Cache hits are excluded — their near-zero durations would drown the
    signal the percentiles exist to show (how long real runs take).
    """
    by_figure: Dict[str, List[float]] = {}
    for entry in entries:
        if entry.source != SOURCE_SIMULATED:
            continue
        by_figure.setdefault(figure_of_key(entry.key), []).append(entry.duration_s)
    out: Dict[str, Dict[str, float]] = {}
    for figure, durations in sorted(by_figure.items()):
        durations.sort()
        out[figure] = {
            "runs": float(len(durations)),
            "p50": percentile(durations, 0.50),
            "p95": percentile(durations, 0.95),
        }
    return out


def worker_throughput(entries: List[JournalEntry]) -> Dict[str, Dict[str, float]]:
    """Per-worker attempt counts and throughput.

    Serial (non-pool) attempts group under ``"serial"``.  Throughput is
    attempts per wall-clock second over the worker's active window
    (first to last journalled timestamp); a single-entry window reports
    ``0.0`` rather than a meaningless infinity.
    """
    by_worker: Dict[str, List[JournalEntry]] = {}
    for entry in entries:
        by_worker.setdefault(entry.worker or "serial", []).append(entry)
    out: Dict[str, Dict[str, float]] = {}
    for worker, group in sorted(by_worker.items()):
        window = max(e.ts for e in group) - min(e.ts for e in group)
        out[worker] = {
            "attempts": float(len(group)),
            "simulated": float(sum(1 for e in group if e.source == SOURCE_SIMULATED)),
            "duration_s": sum(e.duration_s for e in group),
            "throughput_per_s": (len(group) / window) if window > 0 else 0.0,
        }
    return out


def summarize(entries: List[JournalEntry]) -> Dict:
    """Aggregate counts for the ``status`` subcommand."""
    by_outcome: Dict[str, int] = {}
    by_source: Dict[str, int] = {}
    retries = 0
    duration = 0.0
    failures: List[JournalEntry] = []
    for entry in entries:
        by_outcome[entry.outcome] = by_outcome.get(entry.outcome, 0) + 1
        by_source[entry.source] = by_source.get(entry.source, 0) + 1
        retries += max(0, entry.attempts - 1)
        duration += entry.duration_s
        if entry.outcome not in ("completed", "cached"):
            failures.append(entry)
    return {
        "total": len(entries),
        "by_outcome": by_outcome,
        "by_source": by_source,
        "retries": retries,
        "duration_s": duration,
        "failures": failures[-10:],
        "duration_quantiles": duration_quantiles(entries),
        "worker_throughput": worker_throughput(entries),
    }
