"""Shared-DRAM bandwidth contention.

Cores finish at different times; while several are active they share the
memory controller.  We model the makespan with a water-filling allocation:
find the smallest time ``T`` such that every core can stream its DRAM
bytes within ``T`` minus its non-DRAM time, subject to a per-core link
limit and the total bandwidth of the board.

``makespan`` is exact for the fluid model (continuous bandwidth sharing,
no queueing dynamics); DESIGN.md §5.3 discusses the approximation and the
ablation bench compares it against naive equal-share division.
"""

from __future__ import annotations

from typing import Sequence


def demand_rate(bytes_needed: float, time_available: float) -> float:
    """Bandwidth a core needs to move ``bytes_needed`` in ``time_available``."""
    if bytes_needed <= 0:
        return 0.0
    if time_available <= 0:
        return float("inf")
    return bytes_needed / time_available


def feasible(
    deadline: float,
    other_seconds: Sequence[float],
    dram_bytes: Sequence[float],
    total_bw: float,
    core_bw: float,
) -> bool:
    """Can every core finish by ``deadline`` under the bandwidth limits?"""
    total_needed = 0.0
    for other, nbytes in zip(other_seconds, dram_bytes):
        needed = demand_rate(nbytes, deadline - other)
        if needed > core_bw * (1 + 1e-12):
            return False
        total_needed += needed
    return total_needed <= total_bw * (1 + 1e-12)


def makespan(
    other_seconds: Sequence[float],
    dram_bytes: Sequence[float],
    total_bw: float,
    core_bw: float,
    iterations: int = 64,
) -> float:
    """Smallest completion time for all cores (water-filling allocation).

    Parameters
    ----------
    other_seconds:
        Per-core time spent on everything except streaming DRAM bytes
        (compute, cache transfers, exposed miss latency).
    dram_bytes:
        Per-core DRAM traffic in bytes.
    total_bw / core_bw:
        Board-level and per-core-link bandwidth in bytes/second.
    """
    if len(other_seconds) != len(dram_bytes):
        raise ValueError("per-core inputs must have equal length")
    if not other_seconds:
        return 0.0
    if total_bw <= 0 or core_bw <= 0:
        raise ValueError("bandwidths must be positive")

    lo = max(other_seconds)
    total_bytes = float(sum(dram_bytes))
    lo = max(lo, total_bytes / total_bw)
    if total_bytes == 0:
        return lo
    # An upper bound: run cores' DRAM phases one after another at the
    # slower of the two limits.
    hi = max(other_seconds) + total_bytes / min(total_bw, core_bw)
    if feasible(lo, other_seconds, dram_bytes, total_bw, core_bw):
        return lo
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if feasible(mid, other_seconds, dram_bytes, total_bw, core_bw):
            hi = mid
        else:
            lo = mid
    return hi


def equal_share_makespan(
    other_seconds: Sequence[float],
    dram_bytes: Sequence[float],
    total_bw: float,
    core_bw: float,
) -> float:
    """Baseline contention model for the ablation: every core gets a fixed
    1/n slice of the board bandwidth regardless of demand."""
    n = len(other_seconds)
    if n == 0:
        return 0.0
    share = min(core_bw, total_bw / n)
    return max(
        other + nbytes / share if nbytes else other
        for other, nbytes in zip(other_seconds, dram_bytes)
    )
