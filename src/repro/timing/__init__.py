"""Timing models: per-core pipelines plus shared-DRAM contention.

* :mod:`repro.timing.cpu` — instruction-mix throughput model;
* :mod:`repro.timing.model` — bounded-overlap core timing and device-level
  combination;
* :mod:`repro.timing.contention` — water-filling DRAM bandwidth sharing.
"""

from repro.timing.contention import equal_share_makespan, feasible, makespan
from repro.timing.cpu import InstructionMix, compute_cycles, instruction_mix
from repro.timing.model import (
    CoreTiming,
    TimeAttribution,
    TimingResult,
    combine,
    time_core,
    time_run,
)

__all__ = [
    "CoreTiming",
    "InstructionMix",
    "TimeAttribution",
    "TimingResult",
    "combine",
    "compute_cycles",
    "equal_share_makespan",
    "feasible",
    "instruction_mix",
    "makespan",
    "time_core",
    "time_run",
]
