"""Bounded-overlap timing model.

Given per-core operation counts (from the trace generator) and per-core
memory-event counts (from the hierarchy simulator), produce a wall-clock
estimate:

    T_core = max(compute, inter-cache transfer) + exposed miss latency
             + TLB walk time                                  [non-DRAM part]
    T      = water-fill contention over DRAM streaming on top of the
             per-core non-DRAM parts.

Exposed miss latency: demand misses pay the next level's access latency;
prefetch-covered misses pay nothing (they were fetched ahead of use, their
cost is pure bandwidth); out-of-order cores overlap up to ``mlp``
outstanding misses.  In-order cores (both RISC-V boards) expose nearly all
of it — which is exactly why the paper's optimizations matter more there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.exec.trace import CoreWork
from repro.memsim.stats import HierarchySnapshot
from repro.timing.contention import makespan
from repro.timing.cpu import compute_cycles


@dataclass
class CoreTiming:
    """Timing breakdown of one core, cycles unless noted."""

    compute: float = 0.0
    transfer: float = 0.0        # inter-cache fill/writeback bandwidth
    exposed_latency: float = 0.0
    tlb: float = 0.0
    dram_bytes: int = 0

    @property
    def non_dram_cycles(self) -> float:
        return max(self.compute, self.transfer) + self.exposed_latency + self.tlb

    def seconds(self, freq_ghz: float) -> float:
        return self.non_dram_cycles / (freq_ghz * 1e9)


@dataclass
class TimingResult:
    """Wall-clock estimate for one program run on one device."""

    seconds: float
    device_key: str
    active_cores: int
    per_core: List[CoreTiming] = field(default_factory=list)
    bottleneck: str = ""

    @property
    def dram_bytes(self) -> int:
        return sum(core.dram_bytes for core in self.per_core)

    def breakdown(self) -> Dict[str, float]:
        """Aggregate cycle shares (diagnostics, not additive to seconds)."""
        return {
            "compute_cycles": sum(c.compute for c in self.per_core),
            "transfer_cycles": sum(c.transfer for c in self.per_core),
            "exposed_latency_cycles": sum(c.exposed_latency for c in self.per_core),
            "tlb_cycles": sum(c.tlb for c in self.per_core),
            "dram_bytes": float(self.dram_bytes),
        }


def time_core(
    device: DeviceSpec,
    work: CoreWork,
    snapshot: HierarchySnapshot,
) -> CoreTiming:
    """Cycle breakdown of one core from its work and memory events."""
    timing = CoreTiming()
    timing.compute = compute_cycles(work, device.cpu)

    line = snapshot.line_size
    mlp = max(1, device.cpu.mlp)
    levels = snapshot.levels
    n_caches = len(device.caches)
    if len(levels) != n_caches:
        raise SimulationError(
            f"snapshot has {len(levels)} levels, device {device.key} has {n_caches}"
        )

    transfer = 0.0
    exposed = 0.0
    for index, level in enumerate(levels):
        spec = device.caches[index]
        # Traffic crossing the boundary below this level.
        boundary_bytes = (level.misses + level.writebacks) * line
        if index < n_caches - 1:
            transfer += boundary_bytes / device.caches[index].fill_bw_bytes_per_cycle
        demand_misses = max(0, level.misses - level.prefetch_hits)
        if index < n_caches - 1:
            next_latency = device.caches[index + 1].latency_cycles
        else:
            next_latency = device.dram.latency_ns * device.cpu.freq_ghz
        exposed += demand_misses * next_latency / mlp
    timing.transfer = transfer
    timing.exposed_latency = exposed
    timing.tlb = snapshot.tlb_walks * (device.tlb.walk_cycles if device.tlb else 0)
    timing.dram_bytes = snapshot.dram_bytes
    return timing


def combine(
    device: DeviceSpec,
    per_core: Sequence[CoreTiming],
    active_cores: Optional[int] = None,
) -> TimingResult:
    """Fold per-core timings into a device-level wall-clock estimate."""
    active = active_cores if active_cores is not None else len(per_core)
    freq = device.cpu.freq_ghz
    other_seconds = [core.seconds(freq) for core in per_core]
    dram_bytes = [float(core.dram_bytes) for core in per_core]
    total = makespan(
        other_seconds,
        dram_bytes,
        device.dram.bandwidth_gbs * 1e9,
        device.dram.core_bandwidth_gbs * 1e9,
    )

    # Name the dominant term of the slowest core, for reports.
    slowest = max(range(len(per_core)), key=lambda c: other_seconds[c] + 0.0)
    core = per_core[slowest]
    dram_seconds = total - max(other_seconds)
    terms = {
        "compute": core.compute,
        "cache transfer": core.transfer,
        "miss latency": core.exposed_latency,
        "tlb walks": core.tlb,
        "dram bandwidth": dram_seconds * freq * 1e9,
    }
    bottleneck = max(terms, key=terms.get)
    return TimingResult(
        seconds=total,
        device_key=device.key,
        active_cores=active,
        per_core=list(per_core),
        bottleneck=bottleneck,
    )


def time_run(
    device: DeviceSpec,
    works: Sequence[CoreWork],
    snapshots: Sequence[HierarchySnapshot],
    active_cores: Optional[int] = None,
) -> TimingResult:
    """Timing for a full run: one (work, snapshot) pair per active core."""
    if len(works) != len(snapshots):
        raise SimulationError("need one snapshot per core's work summary")
    per_core = [time_core(device, w, s) for w, s in zip(works, snapshots)]
    return combine(device, per_core, active_cores)
