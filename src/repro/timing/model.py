"""Bounded-overlap timing model.

Given per-core operation counts (from the trace generator) and per-core
memory-event counts (from the hierarchy simulator), produce a wall-clock
estimate:

    T_core = max(compute, inter-cache transfer) + exposed miss latency
             + TLB walk time                                  [non-DRAM part]
    T      = water-fill contention over DRAM streaming on top of the
             per-core non-DRAM parts.

Exposed miss latency: demand misses pay the next level's access latency;
prefetch-covered misses pay nothing (they were fetched ahead of use, their
cost is pure bandwidth); out-of-order cores overlap up to ``mlp``
outstanding misses.  In-order cores (both RISC-V boards) expose nearly all
of it — which is exactly why the paper's optimizations matter more there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.exec.trace import CoreWork
from repro.memsim.stats import HierarchySnapshot
from repro.profiling import tracer
from repro.timing.contention import makespan
from repro.timing.cpu import compute_cycles


@dataclass
class CoreTiming:
    """Timing breakdown of one core, cycles unless noted."""

    compute: float = 0.0
    transfer: float = 0.0        # inter-cache fill/writeback bandwidth
    exposed_latency: float = 0.0
    tlb: float = 0.0
    dram_bytes: int = 0
    #: ``exposed_latency`` split by the level the demand miss occurred at
    #: (each miss pays the *next* level's access latency).
    exposed_by_level: Dict[str, float] = field(default_factory=dict)

    @property
    def non_dram_cycles(self) -> float:
        return max(self.compute, self.transfer) + self.exposed_latency + self.tlb

    def seconds(self, freq_ghz: float) -> float:
        return self.non_dram_cycles / (freq_ghz * 1e9)


@dataclass
class TimeAttribution:
    """Where one core's share of the wall-clock went, in seconds.

    The components partition the device wall-clock ``T`` exactly (to
    floating-point rounding): ``total() == T`` for *every* core, because
    in the fluid contention model each core with DRAM traffic stretches
    its streaming phase to finish exactly at the makespan, and a core
    with no traffic idles the remainder.

    * ``compute`` — pipeline cycles (includes inter-cache transfer
      overlapped under compute);
    * ``transfer`` — inter-cache fill/writeback time *not* hidden under
      compute (``max(0, transfer - compute)``);
    * ``exposed_latency`` — demand-miss latency by miss level (in-order
      cores expose nearly all of it, the paper's central observation);
    * ``tlb`` — page-table walk time;
    * ``dram_stream`` — this core's DRAM bytes at its unconstrained link
      rate (the floor no optimization can beat);
    * ``dram_contention`` — extra streaming time from sharing the memory
      controller with other cores (water-filling);
    * ``idle`` — waiting on slower cores with no DRAM traffic left.
    """

    compute: float = 0.0
    transfer: float = 0.0
    exposed_latency: Dict[str, float] = field(default_factory=dict)
    tlb: float = 0.0
    dram_stream: float = 0.0
    dram_contention: float = 0.0
    idle: float = 0.0

    @property
    def exposed_latency_total(self) -> float:
        return sum(self.exposed_latency.values())

    def total(self) -> float:
        return (
            self.compute
            + self.transfer
            + self.exposed_latency_total
            + self.tlb
            + self.dram_stream
            + self.dram_contention
            + self.idle
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat mapping; per-level latency keyed ``exposed_latency.<L>``."""
        out: Dict[str, float] = {"compute": self.compute, "transfer": self.transfer}
        for level, seconds in self.exposed_latency.items():
            out[f"exposed_latency.{level}"] = seconds
        out.update(
            tlb=self.tlb,
            dram_stream=self.dram_stream,
            dram_contention=self.dram_contention,
            idle=self.idle,
        )
        return out


@dataclass
class TimingResult:
    """Wall-clock estimate for one program run on one device."""

    seconds: float
    device_key: str
    active_cores: int
    per_core: List[CoreTiming] = field(default_factory=list)
    bottleneck: str = ""
    #: Per-core wall-clock attribution; every entry's ``total()`` equals
    #: ``seconds`` (asserted by the profiling test-suite).
    attribution: List[TimeAttribution] = field(default_factory=list)

    @property
    def dram_bytes(self) -> int:
        return sum(core.dram_bytes for core in self.per_core)

    def attribution_summary(self) -> Dict[str, float]:
        """Device-level attribution: the *average core's* timeline.

        Each core's components sum to ``seconds``, so their component-wise
        mean does too — the summary stays an exact partition of the
        reported wall-clock.
        """
        if not self.attribution:
            return {}
        n = len(self.attribution)
        keys: List[str] = []
        for attr in self.attribution:
            for key in attr.as_dict():
                if key not in keys:
                    keys.append(key)
        return {
            key: sum(attr.as_dict().get(key, 0.0) for attr in self.attribution) / n
            for key in keys
        }

    def breakdown(self) -> Dict[str, float]:
        """Aggregate cycle shares (diagnostics, not additive to seconds)."""
        return {
            "compute_cycles": sum(c.compute for c in self.per_core),
            "transfer_cycles": sum(c.transfer for c in self.per_core),
            "exposed_latency_cycles": sum(c.exposed_latency for c in self.per_core),
            "tlb_cycles": sum(c.tlb for c in self.per_core),
            "dram_bytes": float(self.dram_bytes),
        }


def time_core(
    device: DeviceSpec,
    work: CoreWork,
    snapshot: HierarchySnapshot,
) -> CoreTiming:
    """Cycle breakdown of one core from its work and memory events."""
    timing = CoreTiming()
    timing.compute = compute_cycles(work, device.cpu)

    line = snapshot.line_size
    mlp = max(1, device.cpu.mlp)
    levels = snapshot.levels
    n_caches = len(device.caches)
    if len(levels) != n_caches:
        raise SimulationError(
            f"snapshot has {len(levels)} levels, device {device.key} has {n_caches}"
        )

    transfer = 0.0
    exposed = 0.0
    for index, level in enumerate(levels):
        spec = device.caches[index]
        # Traffic crossing the boundary below this level.
        boundary_bytes = (level.misses + level.writebacks) * line
        if index < n_caches - 1:
            transfer += boundary_bytes / device.caches[index].fill_bw_bytes_per_cycle
        demand_misses = max(0, level.misses - level.prefetch_hits)
        if index < n_caches - 1:
            next_latency = device.caches[index + 1].latency_cycles
        else:
            next_latency = device.dram.latency_ns * device.cpu.freq_ghz
        level_exposed = demand_misses * next_latency / mlp
        timing.exposed_by_level[spec.name] = level_exposed
        exposed += level_exposed
    timing.transfer = transfer
    timing.exposed_latency = exposed
    timing.tlb = snapshot.tlb_walks * (device.tlb.walk_cycles if device.tlb else 0)
    timing.dram_bytes = snapshot.dram_bytes
    return timing


def combine(
    device: DeviceSpec,
    per_core: Sequence[CoreTiming],
    active_cores: Optional[int] = None,
) -> TimingResult:
    """Fold per-core timings into a device-level wall-clock estimate."""
    active = active_cores if active_cores is not None else len(per_core)
    freq = device.cpu.freq_ghz
    other_seconds = [core.seconds(freq) for core in per_core]
    dram_bytes = [float(core.dram_bytes) for core in per_core]
    total = makespan(
        other_seconds,
        dram_bytes,
        device.dram.bandwidth_gbs * 1e9,
        device.dram.core_bandwidth_gbs * 1e9,
    )
    link_rate = min(device.dram.bandwidth_gbs, device.dram.core_bandwidth_gbs) * 1e9
    attribution = [
        _attribute_core(core, other, total, freq, link_rate)
        for core, other in zip(per_core, other_seconds)
    ]

    # Name the dominant term of the slowest core, for reports.
    slowest = max(range(len(per_core)), key=lambda c: other_seconds[c] + 0.0)
    core = per_core[slowest]
    dram_seconds = total - max(other_seconds)
    terms = {
        "compute": core.compute,
        "cache transfer": core.transfer,
        "miss latency": core.exposed_latency,
        "tlb walks": core.tlb,
        "dram bandwidth": dram_seconds * freq * 1e9,
    }
    bottleneck = max(terms, key=terms.get)
    return TimingResult(
        seconds=total,
        device_key=device.key,
        active_cores=active,
        per_core=list(per_core),
        bottleneck=bottleneck,
        attribution=attribution,
    )


def _attribute_core(
    core: CoreTiming,
    non_dram_seconds: float,
    total_seconds: float,
    freq_ghz: float,
    link_rate: float,
) -> TimeAttribution:
    """Partition ``total_seconds`` into this core's components.

    The makespan never undercuts any core's non-DRAM time (its lower
    bound is ``max(other_seconds)``), so ``dram_total >= 0`` holds by
    construction and the components sum back to ``total_seconds`` up to
    floating-point rounding.
    """
    hz = freq_ghz * 1e9
    exposed = dict(core.exposed_by_level)
    if not exposed and core.exposed_latency:
        exposed = {"all": core.exposed_latency}
    dram_total = total_seconds - non_dram_seconds
    if core.dram_bytes > 0:
        stream = min(dram_total, core.dram_bytes / link_rate)
        contention = dram_total - stream
        idle = 0.0
    else:
        stream = contention = 0.0
        idle = dram_total
    return TimeAttribution(
        compute=core.compute / hz,
        transfer=max(0.0, core.transfer - core.compute) / hz,
        exposed_latency={name: cycles / hz for name, cycles in exposed.items()},
        tlb=core.tlb / hz,
        dram_stream=stream,
        dram_contention=contention,
        idle=idle,
    )


def time_run(
    device: DeviceSpec,
    works: Sequence[CoreWork],
    snapshots: Sequence[HierarchySnapshot],
    active_cores: Optional[int] = None,
) -> TimingResult:
    """Timing for a full run: one (work, snapshot) pair per active core."""
    if len(works) != len(snapshots):
        raise SimulationError("need one snapshot per core's work summary")
    with tracer.span("timing", cat="timing", device=device.key, cores=len(works)):
        per_core = [time_core(device, w, s) for w, s in zip(works, snapshots)]
        result = combine(device, per_core, active_cores)
        # Chrome counter track next to the spans: where each core's share
        # of the wall-clock went, so trace viewers can plot attribution
        # alongside the PMU counters simulate() emits.
        for core_id, attr in enumerate(result.attribution):
            tracer.counter(
                f"timing.core{core_id}", attr.as_dict(), tid=core_id + 1
            )
        return result
