"""Per-core compute-cycle estimation.

Converts a core's operation counts into pipeline cycles under the device's
issue width, memory-port and FP-pipe throughput, with vectorized loop work
divided across vector lanes.  This is a throughput (not latency) model;
miss latency is accounted separately in :mod:`repro.timing.model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.spec import CpuSpec
from repro.exec.trace import CoreWork


@dataclass
class InstructionMix:
    """Estimated dynamic instruction counts of one core."""

    mem: float = 0.0
    fp: float = 0.0
    integer: float = 0.0

    @property
    def total(self) -> float:
        return self.mem + self.fp + self.integer


def instruction_mix(work: CoreWork, cpu: CpuSpec) -> InstructionMix:
    """Instructions after FMA fusion and vectorization."""
    mix = InstructionMix()

    scalar = work.scalar
    mix.mem += scalar.loads + scalar.stores
    mix.fp += max(0, scalar.flops - scalar.fmas)
    mix.integer += scalar.int_ops

    vector = work.vector
    v_refs = vector.loads + vector.stores
    if v_refs:
        if cpu.vector_bits > 0:
            avg_elem = max(1.0, vector.bytes_referenced / v_refs)
            lanes = max(1.0, cpu.vector_bits / (8.0 * avg_elem))
        else:
            lanes = 1.0
        mix.mem += v_refs / lanes
        mix.fp += max(0, vector.flops - vector.fmas) / lanes
        # Loop overhead amortizes across lanes too.
        mix.integer += vector.int_ops / lanes
    else:
        mix.fp += max(0, vector.flops - vector.fmas)
        mix.integer += vector.int_ops
    return mix


def compute_cycles(work: CoreWork, cpu: CpuSpec) -> float:
    """Pipeline cycles to issue/execute the instruction mix."""
    mix = instruction_mix(work, cpu)
    return max(
        mix.total / cpu.issue_width,
        mix.mem / cpu.mem_ports,
        mix.fp / cpu.flop_pipes,
    )
