"""In-place dense matrix transposition — the paper's Section 4.2 suite.

Five variants, exactly the paper's progression:

* ``naive``            — Listing 1: the triangular swap loop;
* ``parallel``         — naive + OpenMP over the outer loop;
* ``blocking``         — Listing 2: triangular cache blocking (a pure loop
  transformation — built from naive with :class:`TileTriangular2D`);
* ``manual_blocking``  — Listing 3: blocks staged through a per-thread
  scratch buffer so all DRAM traffic is unit-stride;
* ``dynamic``          — manual_blocking with ``schedule(dynamic)`` to
  balance the triangular iteration space.

The paper's Listing 1 writes ``mat[i][j] = mat[j][i]`` — as printed that
symmetrizes the matrix rather than transposing it; like the authors'
actual benchmark, these kernels implement the in-place *swap*.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.errors import IRError
from repro.ir.builder import LoopBuilder
from repro.ir.program import Program
from repro.ir.types import DType
from repro.transforms import Parallelize, TileTriangular2D, apply_passes

DEFAULT_BLOCK = 16


def reference(mat: np.ndarray) -> np.ndarray:
    """Ground truth: numpy transpose (out of place for clarity)."""
    return np.ascontiguousarray(mat.T)


def naive(n: int) -> Program:
    """Listing 1 (as an in-place swap)."""
    b = LoopBuilder(f"transpose_naive_{n}")
    mat = b.array("mat", DType.F64, (n, n))
    with b.loop("i", 0, n) as i:
        with b.loop("j", i + 1, n) as j:
            t = b.local("t", mat[i, j])
            b.store(mat, (i, j), mat[j, i])
            b.store(mat, (j, i), t)
    return b.build()


def parallel(n: int, schedule: str = "static") -> Program:
    """Naive + ``#pragma omp parallel for`` on the row loop."""
    return apply_passes(
        naive(n),
        [Parallelize("i", schedule=schedule)],
        rename=f"transpose_parallel_{n}",
    )


def blocking(n: int, block: int = DEFAULT_BLOCK) -> Program:
    """Listing 2: blocked traversal, derived mechanically from naive."""
    return apply_passes(
        naive(n),
        [TileTriangular2D("i", "j", block), Parallelize("i_blk")],
        rename=f"transpose_blocking_{n}_b{block}",
    )


def manual_blocking(
    n: int, block: int = DEFAULT_BLOCK, schedule: str = "static", chunk: Optional[int] = None
) -> Program:
    """Listing 3: blocks staged through per-thread scratch buffers.

    For every off-diagonal block pair (I, J), both blocks are *read* with
    unit stride into scratch, transposed inside the (cache-resident)
    scratch, and *written* back with unit stride — so every DRAM-touching
    access is sequential.  Diagonal blocks are swapped in place (they are
    cache-resident once loaded).  Requires ``n % block == 0``.
    """
    if n % block:
        raise IRError(f"manual blocking requires n % block == 0 (n={n}, block={block})")
    b = LoopBuilder(f"transpose_manual_{n}_b{block}")
    mat = b.array("mat", DType.F64, (n, n))
    buf1 = b.array("buf1", DType.F64, (block, block), scope="local")
    buf2 = b.array("buf2", DType.F64, (block, block), scope="local")
    B = block
    with b.loop("i_blk", 0, n, step=B, parallel=True, schedule=schedule, chunk=chunk) as i_blk:
        # Diagonal block: plain in-place swap (one block fits in cache).
        with b.loop("i", i_blk, i_blk + B) as i:
            with b.loop("j", i + 1, i_blk + B) as j:
                t = b.local("t", mat[i, j])
                b.store(mat, (i, j), mat[j, i])
                b.store(mat, (j, i), t)
        with b.loop("j_blk", i_blk + B, n, step=B) as j_blk:
            # Stage both blocks into scratch with unit-stride reads.
            with b.loop("li", 0, B) as li:
                with b.loop("lj", 0, B) as lj:
                    b.store(buf1, (li, lj), mat[i_blk + li, j_blk + lj])
            with b.loop("mi", 0, B) as mi:
                with b.loop("mj", 0, B) as mj:
                    b.store(buf2, (mi, mj), mat[j_blk + mi, i_blk + mj])
            # Write back transposed, unit-stride stores to DRAM; the
            # strided reads hit the cache-resident scratch buffers.
            with b.loop("si", 0, B) as si:
                with b.loop("sj", 0, B) as sj:
                    b.store(mat, (j_blk + si, i_blk + sj), buf1[sj, si])
            with b.loop("ti", 0, B) as ti:
                with b.loop("tj", 0, B) as tj:
                    b.store(mat, (i_blk + ti, j_blk + tj), buf2[tj, ti])
    return b.build()


def dynamic(n: int, block: int = DEFAULT_BLOCK, chunk: int = 1) -> Program:
    """Manual blocking with dynamic scheduling of the parallel loop.

    The outer triangular loop's rows shrink as ``i_blk`` grows; static
    slabs leave the first core with far more work (the paper's stated
    motivation for this variant).
    """
    program = manual_blocking(n, block, schedule="dynamic", chunk=chunk)
    return program.with_body(program.body, name=f"transpose_dynamic_{n}_b{block}")


VARIANTS: Dict[str, Callable[..., Program]] = {
    "Naive": naive,
    "Parallel": parallel,
    "Blocking": blocking,
    "Manual_blocking": manual_blocking,
    "Dynamic": dynamic,
}

VARIANT_ORDER = ["Naive", "Parallel", "Blocking", "Manual_blocking", "Dynamic"]


def build(variant: str, n: int, block: int = DEFAULT_BLOCK) -> Program:
    """Build a paper variant by its figure label."""
    if variant == "Naive":
        return naive(n)
    if variant == "Parallel":
        return parallel(n)
    if variant == "Blocking":
        return blocking(n, block)
    if variant == "Manual_blocking":
        return manual_blocking(n, block)
    if variant == "Dynamic":
        return dynamic(n, block)
    raise IRError(f"unknown transpose variant {variant!r}; known: {VARIANT_ORDER}")
