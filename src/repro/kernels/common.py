"""Shared kernel utilities: Gaussian filter weights, input generators."""

from __future__ import annotations

import numpy as np


def gaussian_kernel_1d(size: int, sigma: float = None) -> np.ndarray:
    """Normalized 1-D Gaussian kernel (float32), as in the paper's Eq. (1)."""
    if size < 1 or size % 2 == 0:
        raise ValueError(f"filter size must be odd and positive, got {size}")
    if sigma is None:
        # OpenCV's convention for an unspecified sigma.
        sigma = 0.3 * ((size - 1) * 0.5 - 1) + 0.8
    x = np.arange(size, dtype=np.float64) - (size - 1) / 2.0
    kernel = np.exp(-(x * x) / (2.0 * sigma * sigma))
    kernel /= kernel.sum()
    return kernel.astype(np.float32)


def gaussian_kernel_2d(size: int, sigma: float = None) -> np.ndarray:
    """Separable 2-D Gaussian kernel: the outer product of the 1-D kernel.

    Built as an exact outer product so the separable variants agree with
    the 2-D variant up to float rounding only.
    """
    k1 = gaussian_kernel_1d(size, sigma).astype(np.float64)
    return np.outer(k1, k1).astype(np.float32)


def random_matrix(n: int, seed: int = 0) -> np.ndarray:
    """A reproducible random f64 matrix for transpose tests."""
    rng = np.random.default_rng(seed)
    return rng.random((n, n))


def random_image(height: int, width: int, channels: int = 3, seed: int = 0) -> np.ndarray:
    """A reproducible random float32 image laid out (H, W*C) row-major —
    the flat interleaved-channel layout the kernels index."""
    rng = np.random.default_rng(seed)
    return rng.random((height, width * channels)).astype(np.float32)
