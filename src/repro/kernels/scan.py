"""First-order linear recurrence — the linter's loop-carried demo kernel.

Not one of the paper's figure suites: every loop the paper parallelizes
is genuinely parallel, so none of them can make the race checker fire.
This kernel fills that gap with the canonical sequential loop

    a[i] = ALPHA * a[i-1] + b[i]

(an IIR filter / inclusive scan).  The ``Parallel`` variant commits the
mistake ``repro lint`` exists to catch: it parallelizes the recurrence
anyway, opting out of certification with ``certify=False``.  The linter
reports it twice — ``RPR001`` (the distance-1 carried dependence proper)
and ``RPR005`` (a transform applied without its legality proof).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IRError
from repro.ir.builder import LoopBuilder
from repro.ir.program import Program
from repro.ir.types import DType
from repro.transforms import Parallelize, apply_passes

ALPHA = 0.5
DEFAULT_N = 65536


def reference(a0: float, src: np.ndarray) -> np.ndarray:
    """Ground truth: the recurrence evaluated sequentially in numpy."""
    out = np.empty(len(src) + 1, dtype=np.float64)
    out[0] = a0
    for i in range(1, len(out)):
        out[i] = ALPHA * out[i - 1] + src[i - 1]
    return out


def naive(n: int) -> Program:
    """The recurrence as written: sequential, correct."""
    b = LoopBuilder(f"scan_naive_{n}")
    acc = b.array("a", DType.F64, (n,))
    src = b.array("b", DType.F64, (n,))
    with b.loop("i", 1, n) as i:
        b.store(acc, i, acc[i - 1] * ALPHA + src[i])
    return b.build()


def parallel(n: int, schedule: str = "static") -> Program:
    """The recurrence parallelized *illegally* (certification skipped)."""
    return apply_passes(
        naive(n),
        [Parallelize("i", schedule=schedule, certify=False)],
        rename=f"scan_parallel_{n}",
    )


VARIANT_ORDER = ["Naive", "Parallel"]

BUILDERS = {
    "Naive": lambda n: naive(n),
    "Parallel": lambda n: parallel(n),
}


def build(variant: str, n: int = DEFAULT_N) -> Program:
    try:
        builder = BUILDERS[variant]
    except KeyError:
        raise IRError(f"unknown scan variant {variant!r}; known: {VARIANT_ORDER}")
    return builder(n)
