"""Gaussian Blur — the paper's Section 4.3 suite.

Images are interleaved-channel row-major tensors, declared as 2-D arrays
of shape ``(H, W*C)`` so every variant's subscripts stay affine (column
``(j)*C + c`` for pixel column ``j``, channel ``c``).

Five variants, the paper's progression:

* ``naive``       — Listing 4: 2-D kernel, channel loop outside the filter
  loops, so the innermost tap walk is C-strided;
* ``unit_stride`` — channel loop moved innermost: taps become unit-stride
  (Fig. 4 right panel), accumulating into a 3-entry local array;
* ``one_d``       — Eq. (1): two 1-D passes (vertical then horizontal);
  asymptotically F times less work, but the vertical pass walks columns;
* ``memory``      — Listing 5: the vertical pass reordered so every filter
  tap streams across a full image row (unit-stride, vectorizable — the
  source of the >19x Xeon speedup);
* ``parallel``    — memory + OpenMP over rows of both passes.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.errors import IRError
from repro.ir.builder import LoopBuilder
from repro.ir.program import Program
from repro.ir.types import DType
from repro.kernels.common import gaussian_kernel_1d, gaussian_kernel_2d
from repro.transforms import Parallelize, apply_passes

CHANNELS = 3
DEFAULT_FILTER = 19


def reference(image: np.ndarray, size: int = DEFAULT_FILTER, sigma: float = None) -> np.ndarray:
    """Numpy ground truth with the paper's "valid interior" convention.

    ``image`` has shape (H, W*C); the result is zero outside the region
    the kernels write: rows [m, H-F+m), pixel columns [m, W-F+m).
    """
    k2 = gaussian_kernel_2d(size, sigma).astype(np.float64)
    h, wc = image.shape
    w = wc // CHANNELS
    m = size // 2
    src = image.reshape(h, w, CHANNELS).astype(np.float64)
    out = np.zeros_like(src)
    for i in range(h - size):
        for j in range(w - size):
            window = src[i : i + size, j : j + size, :]
            out[i + m, j + m, :] = np.tensordot(k2, window, axes=([0, 1], [0, 1]))
    return out.reshape(h, wc).astype(np.float32)


def _image_arrays(b: LoopBuilder, h: int, w: int):
    src = b.array("src", DType.F32, (h, w * CHANNELS))
    dst = b.array("dst", DType.F32, (h, w * CHANNELS))
    return src, dst


def naive(h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """Listing 4: direct 2-D convolution, channel loop outside the taps."""
    _check(h, w, size)
    b = LoopBuilder(f"blur_naive_{h}x{w}_f{size}")
    src, dst = _image_arrays(b, h, w)
    k2 = b.constant_array("k2", gaussian_kernel_2d(size, sigma))
    m = size // 2
    C = CHANNELS
    with b.loop("i", 0, h - size) as i:
        with b.loop("j", 0, w - size) as j:
            with b.loop("c", 0, C) as c:
                b.local("sum", 0.0)
                with b.loop("i_f", 0, size) as i_f:
                    with b.loop("j_f", 0, size) as j_f:
                        b.local("sum", src[i + i_f, (j + j_f) * C + c] * k2[i_f, j_f], accumulate=True)
                b.store(dst, (i + m, (j + m) * C + c), b.ref("sum"))
    return b.build()


def unit_stride(h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """Channel loop moved inside the taps: unit-stride source accesses
    (Fig. 4, right panel), one accumulator per channel."""
    _check(h, w, size)
    b = LoopBuilder(f"blur_unit_stride_{h}x{w}_f{size}")
    src, dst = _image_arrays(b, h, w)
    k2 = b.constant_array("k2", gaussian_kernel_2d(size, sigma))
    # GCC at -O3 fully unrolls the 3-trip channel loop and keeps the three
    # accumulators in registers (scalar replacement); model that.
    sums = b.array("sums", DType.F32, (CHANNELS,), scope="register")
    m = size // 2
    C = CHANNELS
    with b.loop("i", 0, h - size) as i:
        with b.loop("j", 0, w - size) as j:
            with b.loop("c0", 0, C) as c0:
                b.store(sums, c0, 0.0)
            with b.loop("i_f", 0, size) as i_f:
                with b.loop("j_f", 0, size) as j_f:
                    with b.loop("c", 0, C) as c:
                        b.accumulate(sums, c, src[i + i_f, (j + j_f) * C + c] * k2[i_f, j_f])
            with b.loop("c1", 0, C) as c1:
                b.store(dst, (i + m, (j + m) * C + c1), sums[c1])
    return b.build()


def one_d(h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """Two 1-D passes (Eq. 1): O(WHCF) work instead of O(WHCF^2).

    The vertical pass reads taps a full row apart — the inefficient
    access pattern the "Memory" variant then fixes.
    """
    _check(h, w, size)
    b = LoopBuilder(f"blur_one_d_{h}x{w}_f{size}")
    src, dst = _image_arrays(b, h, w)
    tmp = b.array("tmp", DType.F32, (h, w * CHANNELS))
    k1 = b.constant_array("k1", gaussian_kernel_1d(size, sigma))
    m = size // 2
    C = CHANNELS
    # Pass 1 (vertical): tmp[i+m, jj] = sum_f src[i+f, jj] * k1[f]
    with b.loop("i", 0, h - size) as i:
        with b.loop("j", 0, w * C) as j:
            b.local("sum", 0.0)
            with b.loop("i_f", 0, size) as i_f:
                b.local("sum", src[i + i_f, j] * k1[i_f], accumulate=True)
            b.store(tmp, (i + m, j), b.ref("sum"))
    # Pass 2 (horizontal): dst[i, (j+m)*C+c] = sum_f tmp[i, (j+f)*C+c] * k1[f]
    with b.loop("i2", m, h - size + m) as i2:
        with b.loop("j2", 0, w - size) as j2:
            with b.loop("c", 0, C) as c:
                b.local("hsum", 0.0)
                with b.loop("j_f", 0, size) as j_f:
                    b.local("hsum", tmp[i2, (j2 + j_f) * C + c] * k1[j_f], accumulate=True)
                b.store(dst, (i2, (j2 + m) * C + c), b.ref("hsum"))
    return b.build()


def memory(h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """Listing 5: vertical pass reordered to stream full rows per tap.

    Every access of the vertical pass is unit-stride (and vectorizable);
    the horizontal pass is unchanged from ``one_d``.
    """
    _check(h, w, size)
    b = LoopBuilder(f"blur_memory_{h}x{w}_f{size}")
    src, dst = _image_arrays(b, h, w)
    tmp = b.array("tmp", DType.F32, (h, w * CHANNELS))
    k1 = b.constant_array("k1", gaussian_kernel_1d(size, sigma))
    m = size // 2
    C = CHANNELS
    # Pass 1 (vertical, row-streamed): tmp[i+m, :] += src[i+i_f, :] * k1[i_f]
    with b.loop("i", 0, h - size) as i:
        with b.loop("i_f", 0, size) as i_f:
            with b.loop("j", 0, w * C) as j:
                b.accumulate(tmp, (i + m, j), src[i + i_f, j] * k1[i_f])
    # Pass 2 (horizontal): identical to one_d.
    with b.loop("i2", m, h - size + m) as i2:
        with b.loop("j2", 0, w - size) as j2:
            with b.loop("c", 0, C) as c:
                b.local("hsum", 0.0)
                with b.loop("j_f", 0, size) as j_f:
                    b.local("hsum", tmp[i2, (j2 + j_f) * C + c] * k1[j_f], accumulate=True)
                b.store(dst, (i2, (j2 + m) * C + c), b.ref("hsum"))
    return b.build()


def parallel(h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """``memory`` + OpenMP over the row loops of both passes."""
    program = memory(h, w, size, sigma)
    program = apply_passes(program, [Parallelize("i"), Parallelize("i2")])
    return program.with_body(program.body, name=f"blur_parallel_{h}x{w}_f{size}")


def _check(h: int, w: int, size: int) -> None:
    if size % 2 == 0 or size < 3:
        raise IRError(f"filter size must be odd and >= 3, got {size}")
    if h <= size or w <= size:
        raise IRError(f"image {h}x{w} too small for filter size {size}")


VARIANTS: Dict[str, Callable[..., Program]] = {
    "Naive": naive,
    "Unit-stride": unit_stride,
    "1D_kernels": one_d,
    "Memory": memory,
    "Parallel": parallel,
}

VARIANT_ORDER = ["Naive", "Unit-stride", "1D_kernels", "Memory", "Parallel"]


def build(variant: str, h: int, w: int, size: int = DEFAULT_FILTER, sigma: float = None) -> Program:
    """Build a paper variant by its figure label."""
    try:
        factory = VARIANTS[variant]
    except KeyError:
        raise IRError(f"unknown blur variant {variant!r}; known: {VARIANT_ORDER}")
    return factory(h, w, size, sigma)
