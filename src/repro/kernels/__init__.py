"""The paper's benchmark kernels as IR programs.

* :mod:`repro.kernels.stream` — STREAM copy/scale/add/triad (Section 4.1);
* :mod:`repro.kernels.transpose` — five in-place transposition variants
  (Section 4.2, Listings 1-3);
* :mod:`repro.kernels.blur` — five Gaussian-blur variants (Section 4.3,
  Listings 4-5);
* :mod:`repro.kernels.scan` — a loop-carried recurrence (not a paper
  kernel; the race-checker demo for ``repro lint``);
* :mod:`repro.kernels.common` — filter weights and input generators.
"""

from repro.kernels import blur, common, scan, stream, transpose

__all__ = ["blur", "common", "scan", "stream", "transpose"]
