"""The STREAM benchmark (McCalpin) as IR programs.

Four tests, exactly the paper's Section 4.1 inventory:

========  =================  ==============  ==========
test      operation          bytes per iter  FLOP/iter
========  =================  ==============  ==========
COPY      a[i] = b[i]        16              0
SCALE     a[i] = d*b[i]      16              1
SUM       a[i] = b[i]+c[i]   24              1
TRIAD     a[i] = b[i]+d*c[i] 24              2
========  =================  ==============  ==========

("bytes per iter" is the STREAM accounting convention — reads plus the
store, not counting the write-allocate fill.  :func:`stream_bytes` applies
it when converting simulated time to reported bandwidth, as the original
benchmark and the paper both do.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.errors import IRError
from repro.ir.builder import LoopBuilder
from repro.ir.program import Program
from repro.ir.types import DType

SCALAR = 3.0  # the multiplicative constant d


@dataclass(frozen=True)
class StreamTest:
    """Metadata of one STREAM test."""

    name: str
    arrays: int           # how many vectors it touches
    bytes_per_iter: int   # STREAM accounting convention
    flops_per_iter: int
    build: Callable[..., Program]


def _builder(name: str, n: int, arrays: int, parallel: bool):
    b = LoopBuilder(f"stream_{name}_{n}")
    handles = [b.array(chr(ord("a") + k), DType.F64, (n,)) for k in range(arrays)]
    return b, handles


def copy(n: int, parallel: bool = True) -> Program:
    """COPY: a[i] = b[i]."""
    b, (a, src) = _builder("copy", n, 2, parallel)
    with b.loop("i", 0, n, parallel=parallel) as i:
        b.store(a, i, src[i])
    return b.build()


def scale(n: int, parallel: bool = True) -> Program:
    """SCALE: a[i] = d * b[i]."""
    b, (a, src) = _builder("scale", n, 2, parallel)
    with b.loop("i", 0, n, parallel=parallel) as i:
        b.store(a, i, SCALAR * src[i])
    return b.build()


def add(n: int, parallel: bool = True) -> Program:
    """SUM: a[i] = b[i] + c[i]."""
    b, (a, x, y) = _builder("add", n, 3, parallel)
    with b.loop("i", 0, n, parallel=parallel) as i:
        b.store(a, i, x[i] + y[i])
    return b.build()


def triad(n: int, parallel: bool = True) -> Program:
    """TRIAD: a[i] = b[i] + d * c[i] (one FMA per element)."""
    b, (a, x, y) = _builder("triad", n, 3, parallel)
    with b.loop("i", 0, n, parallel=parallel) as i:
        b.store(a, i, x[i] + SCALAR * y[i])
    return b.build()


TESTS: Dict[str, StreamTest] = {
    "copy": StreamTest("copy", 2, 16, 0, copy),
    "scale": StreamTest("scale", 2, 16, 1, scale),
    "add": StreamTest("add", 3, 24, 1, add),
    "triad": StreamTest("triad", 3, 24, 2, triad),
}


def build(test: str, n: int, parallel: bool = True) -> Program:
    """Build one STREAM test by name."""
    try:
        spec = TESTS[test]
    except KeyError:
        raise IRError(f"unknown STREAM test {test!r}; known: {sorted(TESTS)}")
    return spec.build(n, parallel=parallel)


def stream_bytes(test: str, n: int) -> int:
    """Reported bytes of one repetition under the STREAM convention."""
    return TESTS[test].bytes_per_iter * n


def array_elements_for_footprint(test: str, footprint_bytes: int) -> int:
    """Vector length so the test's total arrays occupy ``footprint_bytes``.

    STREAM sizes its arrays per memory level: small enough to live in the
    level under test, too big for the level above (Section 4.1).
    """
    arrays = TESTS[test].arrays
    n = footprint_bytes // (arrays * 8)
    return max(64, n)
