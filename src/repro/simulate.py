"""End-to-end simulation: program + device -> wall-clock estimate.

This is the main entry point users call::

    from repro import simulate, kernels, devices

    program = kernels.transpose.blocking(512, block=16)
    result = simulate(program, devices.xeon_4310t().scaled(16))
    print(result.seconds, result.timing.bottleneck)

It wires the trace generator, per-core memory hierarchies and the timing
model together, with optional steady-state repetition (used by the STREAM
benchmark, which reports the best of many repetitions of a warm loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.opcount import OpCounts
from repro.devices.spec import DeviceSpec
from repro.errors import SimulationError
from repro.exec.trace import CoreWork, RefInfo
from repro.exec.tracegen import TraceGenerator
from repro.ir.program import Program
from repro.ir.stmt import For, walk_stmts
from repro.memsim.columnar import SKIP_PATHS, account_skips, resolve_engine
from repro.memsim.pmu import Pmu
from repro.memsim.stats import HierarchySnapshot, snapshot
from repro.profiling import tracer
from repro.timing.model import TimingResult, time_run


def has_parallel_loop(program: Program) -> bool:
    return any(
        isinstance(node, For) and node.parallel for node in walk_stmts(program.body)
    )


@dataclass
class SimulationResult:
    """Everything one simulated run produced."""

    program_name: str
    device_key: str
    active_cores: int
    seconds: float
    timing: TimingResult
    works: List[CoreWork] = field(default_factory=list)
    snapshots: List[HierarchySnapshot] = field(default_factory=list)
    # PMU attribution state (populated only when ``simulate(..., pmu=True)``):
    # one live Pmu per core plus the reference-id -> RefInfo join table used
    # by ``repro perf annotate`` to map counters back onto IR statements.
    pmus: List[Pmu] = field(default_factory=list)
    ref_table: Dict[int, RefInfo] = field(default_factory=dict)
    # Observability only: which replay engine ran and how many line
    # operations each fast-path skip class absorbed.  Never part of the
    # counter contract — snapshots/records stay engine-independent.
    engine: str = ""
    engine_skips: Dict[str, int] = field(default_factory=dict)

    @property
    def dram_bytes(self) -> int:
        return sum(snap.dram_bytes for snap in self.snapshots)

    @property
    def total_ops(self) -> OpCounts:
        total = OpCounts()
        for work in self.works:
            total = total + work.total
        return total

    @property
    def achieved_dram_gbs(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.dram_bytes / self.seconds / 1e9

    def level_misses(self, name: str) -> int:
        return sum(snap.level(name).misses for snap in self.snapshots)

    def summary(self) -> Dict[str, float]:
        return {
            "seconds": self.seconds,
            "dram_bytes": float(self.dram_bytes),
            "achieved_dram_gbs": self.achieved_dram_gbs,
            "flops": float(self.total_ops.flops),
        }


def simulate(
    program: Program,
    device: DeviceSpec,
    active_cores: Optional[int] = None,
    repetitions: int = 1,
    steady_state: bool = False,
    flush_writebacks: bool = False,
    check_capacity: bool = True,
    pmu: bool = False,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate one run of ``program`` on ``device``.

    Parameters
    ----------
    active_cores:
        Cores used.  Defaults to all device cores when the program has a
        parallel loop, else 1 (the paper runs sequential code on the
        single-core Mango Pi and ``OMP_NUM_THREADS = cores`` elsewhere).
    repetitions / steady_state:
        Run the access trace ``repetitions`` times through the hierarchy;
        with ``steady_state=True`` the timing uses only the *last*
        repetition (caches warm), which is how STREAM-style bandwidth is
        measured.  With ``steady_state=False`` all repetitions are timed:
        memory events and operation counts accumulate across every
        repetition (the first one cold, the rest as warm as the caches
        allow).
    flush_writebacks:
        Charge dirty lines still cached at the end as DRAM writebacks.
    check_capacity:
        Raise :class:`~repro.errors.OutOfMemoryError` when the working set
        exceeds device DRAM (Fig. 2's missing Mango Pi bars at 16384^2).
    pmu:
        Attach a simulated PMU to every core's hierarchy: classify each
        miss via the 3C model, keep per-set conflict histograms and
        prefetch-accuracy counters, and attribute everything back to the
        emitting IR statement.  PMU counters are monotonic across
        repetitions (snapshot deltas subtract them like any other
        counter), and the classification is purely observational — cache
        contents and timing are byte-for-byte identical with it off.
    engine:
        Replay engine: ``"exact"`` (the per-reference oracle loop) or
        ``"fast"`` (the batched columnar engine, bit-identical on every
        counter).  ``None`` resolves ``REPRO_ENGINE``, defaulting to
        ``fast``.  Devices whose replacement policies the fast engine
        does not model fall back to exact hierarchies automatically.
    """
    if repetitions < 1:
        raise SimulationError("repetitions must be >= 1")
    if steady_state and repetitions < 2:
        raise SimulationError("steady_state needs at least 2 repetitions (warm-up + measured)")

    if check_capacity:
        device.check_capacity(program.footprint_bytes(), what=f"program {program.name!r}")

    if active_cores is None:
        active_cores = device.cores if has_parallel_loop(program) else 1

    engine = resolve_engine(engine)

    with tracer.span(
        "simulate", cat="sim", program=program.name, device=device.key,
        cores=active_cores, engine=engine,
    ):
        with tracer.span("build_hierarchies", cat="sim"):
            hierarchies = device.build_hierarchies(active_cores, engine=engine)
        pmus: List[Pmu] = []
        if pmu:
            pmus = [h.attach_pmu() for h in hierarchies]
        with tracer.span("tracegen.plan", cat="tracegen"):
            generator = TraceGenerator(program, num_cores=active_cores)

        baselines = [snapshot(h) for h in hierarchies]
        works = [CoreWork() for _ in range(active_cores)]
        for rep in range(repetitions):
            if steady_state and rep == repetitions - 1:
                # Warm measurement: only the last repetition's memory
                # events and work count toward the timing.
                baselines = [snapshot(h) for h in hierarchies]
                works = [CoreWork() for _ in range(active_cores)]
            for core, hierarchy in enumerate(hierarchies):
                run = hierarchy.process_segment
                # Trace generation and cache simulation are one pipeline:
                # the span covers both (segments are consumed as emitted).
                with tracer.span(
                    "trace+memsim", cat="memsim", core=core, repetition=rep
                ):
                    for seg in generator.core_stream(core):
                        run(seg)
                    hierarchy.drain()
            # ``core_stream`` resets ``generator.work[core]`` on entry, so
            # after the loop it holds exactly this repetition's counts;
            # accumulate so ``works`` always matches the snapshot deltas.
            works = [acc.merge(one) for acc, one in zip(works, generator.work)]
            for core, core_pmu in enumerate(pmus):
                # Chrome-trace counter track per core: cumulative PMU
                # counters sampled at each repetition boundary.
                tracer.counter(
                    f"pmu.core{core}", dict(core_pmu.counters()), tid=core + 1
                )

        if flush_writebacks:
            with tracer.span("flush_writebacks", cat="memsim"):
                for hierarchy in hierarchies:
                    hierarchy.flush()

        finals = [snapshot(h) for h in hierarchies]
        deltas = [final - base for final, base in zip(finals, baselines)]

        engine_skips: Dict[str, int] = {}
        for hierarchy in hierarchies:
            counts_fn = getattr(hierarchy, "skip_counts", None)
            if counts_fn is None:
                continue
            for path, value in counts_fn().items():
                if path in SKIP_PATHS and value:
                    engine_skips[path] = engine_skips.get(path, 0) + int(value)
        if engine_skips:
            account_skips(engine_skips)

        timing = time_run(device, works, deltas, active_cores)
    return SimulationResult(
        program_name=program.name,
        device_key=device.key,
        active_cores=active_cores,
        seconds=timing.seconds,
        timing=timing,
        works=works,
        snapshots=deltas,
        pmus=pmus,
        ref_table=generator.references() if pmu else {},
        engine=engine,
        engine_skips=engine_skips,
    )
