"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-hierarchies mirror the
major subsystems (IR construction, transform legality, simulation and the
RISC-V toolchain).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: bad shapes, unknown variables, invalid nesting."""


class ValidationError(IRError):
    """Raised by :func:`repro.ir.validate.validate_program` on invalid IR."""


class TransformError(ReproError):
    """A compiler pass was asked to perform an illegal transformation."""


class AnalysisError(ReproError):
    """A static analysis could not be computed on the given IR."""


class SimulationError(ReproError):
    """Runtime failure inside the interpreter or memory simulator."""


class TransientSimulationError(SimulationError):
    """A simulation failure that is expected to clear on retry.

    Raised for transient conditions — injected chaos faults (see
    :mod:`repro.runtime.faults`), resource blips, interrupted I/O.  The
    experiment supervisor retries these with exponential backoff and
    jitter before declaring the run failed.
    """


class BudgetExceededError(ReproError):
    """A supervised run overran its wall-clock deadline or step budget.

    Raised by :func:`repro.runtime.supervisor.supervise` when a simulate
    call does not finish within the configured deadline.  Figure
    harnesses convert it into a ``timed_out`` outcome and render the cell
    as missing instead of aborting the whole sweep.
    """


class DeviceError(ReproError):
    """Invalid device specification or a workload that does not fit."""


class OutOfMemoryError(DeviceError):
    """The working set of a workload exceeds a device's DRAM capacity.

    Mirrors the paper's Fig. 2/3 footnote: the 16384x16384 matrix does not
    fit in the 1 GB of the Mango Pi board, so that bar is absent.
    """


class RiscvError(ReproError):
    """Base class for assembler / encoder / emulator failures."""


class AsmSyntaxError(RiscvError):
    """The assembler rejected a source line."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        self.line_number = line_number
        self.line = line
        if line_number:
            message = f"line {line_number}: {message} ({line.strip()!r})"
        super().__init__(message)


class EncodingError(RiscvError):
    """An instruction could not be encoded (bad operand, out-of-range imm)."""


class DecodingError(RiscvError):
    """A 32-bit word does not decode to a known instruction."""


class EmulationError(RiscvError):
    """The functional emulator trapped (bad memory access, bad opcode)."""
