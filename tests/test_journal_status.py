"""Journal enrichment (provenance, durations) and the status CLI."""

import json

import pytest

from repro.runtime.journal import (
    SOURCE_DISK_CACHE,
    SOURCE_SIMULATED,
    Journal,
    JournalEntry,
    duration_quantiles,
    figure_of_key,
    percentile,
    read_journal,
    summarize,
)


def _entry(key="v2:[\"fig2\",\"Naive\"]", outcome="completed", duration=1.0,
           attempts=1, source=SOURCE_SIMULATED, error=""):
    return JournalEntry(
        ts=0.0, key=key, outcome=outcome, duration_s=duration,
        attempts=attempts, error=error, source=source,
    )


# -- parsing helpers -----------------------------------------------------------


class TestFigureOfKey:
    def test_canonical_key(self):
        assert figure_of_key('v2:["fig2","Naive",512]') == "fig2"

    def test_non_json_payload(self):
        assert figure_of_key("v2:not json") == "?"
        assert figure_of_key("just-a-string") == "?"

    def test_non_list_or_non_string_head(self):
        assert figure_of_key('v2:{"a":1}') == "?"
        assert figure_of_key("v2:[42]") == "?"
        assert figure_of_key("v2:[]") == "?"


class TestPercentile:
    def test_empty_and_single(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0

    def test_interpolation(self):
        values = [0.0, 1.0, 2.0, 3.0]
        assert percentile(values, 0.5) == pytest.approx(1.5)
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 3.0
        assert percentile(values, 0.95) == pytest.approx(2.85)


class TestDurationQuantiles:
    def test_groups_by_figure_and_skips_cache_hits(self):
        entries = [
            _entry(duration=1.0),
            _entry(duration=3.0),
            _entry(key='v2:["fig6","Memory"]', duration=10.0),
            _entry(duration=99.0, source=SOURCE_DISK_CACHE),  # excluded
        ]
        quantiles = duration_quantiles(entries)
        assert set(quantiles) == {"fig2", "fig6"}
        assert quantiles["fig2"]["runs"] == 2
        assert quantiles["fig2"]["p50"] == pytest.approx(2.0)
        assert quantiles["fig6"]["p95"] == 10.0

    def test_empty(self):
        assert duration_quantiles([]) == {}


# -- summarize -----------------------------------------------------------------


class TestSummarize:
    def test_empty_journal(self):
        stats = summarize([])
        assert stats["total"] == 0
        assert stats["by_outcome"] == {}
        assert stats["by_source"] == {}
        assert stats["failures"] == []
        assert stats["duration_quantiles"] == {}

    def test_mixed_outcomes_and_sources(self):
        entries = [
            _entry(outcome="completed", attempts=2, duration=1.5),
            _entry(outcome="completed", source=SOURCE_DISK_CACHE, duration=0.0),
            _entry(outcome="failed", error="boom", duration=0.5),
            _entry(outcome="skipped", error="OOM", duration=0.0),
        ]
        stats = summarize(entries)
        assert stats["total"] == 4
        assert stats["by_outcome"] == {"completed": 2, "failed": 1, "skipped": 1}
        assert stats["by_source"] == {SOURCE_SIMULATED: 3, SOURCE_DISK_CACHE: 1}
        assert stats["retries"] == 1
        assert stats["duration_s"] == pytest.approx(2.0)
        assert [e.outcome for e in stats["failures"]] == ["failed", "skipped"]


# -- read_journal robustness ---------------------------------------------------


class TestReadJournal:
    def test_missing_file(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.jsonl")) == []
        assert read_journal("") == []

    def test_truncated_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = json.dumps(
            {"ts": 1.0, "key": "k", "outcome": "completed",
             "duration_s": 0.1, "attempts": 1, "error": "", "source": "simulated"}
        )
        # Simulate a torn write: the process died mid-append.
        path.write_text(good + "\n" + good[: len(good) // 2])
        entries = read_journal(str(path))
        assert len(entries) == 1
        assert entries[0].outcome == "completed"

    def test_blank_lines_and_default_source(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        legacy = json.dumps(
            {"ts": 1.0, "key": "k", "outcome": "completed",
             "duration_s": 0.1, "attempts": 1, "error": ""}
        )
        path.write_text("\n" + legacy + "\n\n")
        entries = read_journal(str(path))
        assert len(entries) == 1
        assert entries[0].source == SOURCE_SIMULATED  # pre-enrichment lines

    def test_round_trip_preserves_source(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.append(_entry(source=SOURCE_DISK_CACHE))
        entries = read_journal(path)
        assert entries[0].source == SOURCE_DISK_CACHE


# -- wide events ---------------------------------------------------------------


class TestWideEvents:
    def test_events_and_entries_interleave_but_read_separately(self, tmp_path):
        from repro.runtime.journal import read_events

        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.append(_entry())
        journal.event({"event": "attempt", "trace": "t1", "attempt": 1})
        journal.append(_entry(outcome="failed", error="boom"))
        journal.event({"event": "span", "trace": "t2", "job_id": "j000001"})
        assert len(read_journal(path)) == 2  # events skipped
        events = read_events(path)
        assert [e["event"] for e in events] == ["attempt", "span"]
        assert all(e["type"] == "event" and "ts" in e for e in events)

    def test_event_filters_by_trace_and_job(self, tmp_path):
        from repro.runtime.journal import read_events

        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.event({"event": "attempt", "trace": "t1", "job_id": "j1"})
        journal.event({"event": "attempt", "trace": "t2", "job_id": "j2"})
        journal.event({"event": "span", "trace": "t1", "job_id": "j1"})
        assert len(read_events(path, trace="t1")) == 2
        assert len(read_events(path, job_id="j2")) == 1
        assert read_events(path, trace="t1", job_id="j2") == []

    def test_unserializable_event_is_dropped_not_raised(self, tmp_path):
        from repro.runtime.journal import read_events

        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        journal.event({"event": "odd", "payload": object()})  # default=str copes
        circular: dict = {}
        circular["self"] = circular
        journal.event({"event": "broken", "payload": circular})  # dropped
        journal.event({"event": "ok"})
        names = [e["event"] for e in read_events(path)]
        assert names == ["odd", "ok"]

    def test_events_survive_rotation(self, tmp_path):
        from repro.runtime.journal import read_events

        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path, max_bytes=1, max_segments=4)
        for index in range(3):
            journal.event({"event": "attempt", "trace": "tX", "attempt": index})
        events = read_events(path, trace="tX")
        assert events  # readable across rotated segments
        attempts = [e["attempt"] for e in events]
        assert attempts == sorted(attempts)  # oldest-first


# -- rotation ------------------------------------------------------------------


class TestRotation:
    def test_rotation_bounds_segments_and_reads_across(self, tmp_path):
        import os

        from repro.runtime.journal import journal_segments

        path = str(tmp_path / "journal.jsonl")
        # Each line is ~130 bytes, so every append overflows max_bytes=1
        # and rotates; max_segments=3 bounds the on-disk history.
        journal = Journal(path, max_bytes=1, max_segments=3)
        for index in range(10):
            journal.append(_entry(key=f'v2:["fig2","k{index}"]'))
        segments = journal_segments(path)
        assert len(segments) <= 4  # 3 rotated + (possibly empty) active
        assert all(os.path.exists(segment) for segment in segments)
        assert not os.path.exists(f"{path}.4")
        entries = read_journal(path)
        # Bounded: only the newest segments survive, oldest-first order.
        keys = [entry.key for entry in entries]
        assert keys == sorted(keys, key=lambda k: int(k.split("k")[1].rstrip('"]')))
        assert keys[-1] == 'v2:["fig2","k9"]'
        assert 1 <= len(entries) <= 4

    def test_no_rotation_by_default(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        journal = Journal(path)
        assert journal.max_bytes == 0
        for _ in range(5):
            journal.append(_entry())
        assert len(read_journal(path)) == 5
        from repro.runtime.journal import journal_segments

        assert journal_segments(path) == [path]

    def test_rotation_env_knobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_JOURNAL_MAX_BYTES", "2048")
        monkeypatch.setenv("REPRO_JOURNAL_SEGMENTS", "7")
        journal = Journal(str(tmp_path / "journal.jsonl"))
        assert journal.max_bytes == 2048
        assert journal.max_segments == 7

    def test_rotation_under_concurrent_append(self, tmp_path):
        """Many threads appending through rotating journals must never
        tear a line or lose an entry to anything but segment expiry."""
        import threading

        path = str(tmp_path / "journal.jsonl")
        workers, per_worker = 4, 25
        # Large enough segment budget that nothing ages out: every line
        # ever written must be readable afterwards.
        journals = [
            Journal(path, max_bytes=400, max_segments=60) for _ in range(workers)
        ]

        def appender(worker):
            for index in range(per_worker):
                journals[worker].append(
                    _entry(key=f'v2:["rot","w{worker}","i{index}"]')
                )

        threads = [
            threading.Thread(target=appender, args=(w,)) for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        entries = read_journal(path)
        keys = {entry.key for entry in entries}
        expected = {
            f'v2:["rot","w{w}","i{i}"]'
            for w in range(workers) for i in range(per_worker)
        }
        assert keys == expected
        assert len(entries) == workers * per_worker


# -- status CLI ----------------------------------------------------------------


class TestStatusCli:
    def _write_journal(self, tmp_path, entries):
        from repro.runtime import default_journal_path

        cache_path = str(tmp_path / "cache.json")
        journal = Journal(default_journal_path(cache_path))
        for entry in entries:
            journal.append(entry)
        return cache_path

    def test_status_empty_journal(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
        assert cli.main(["status"]) == 0
        assert "run journal empty" in capsys.readouterr().out

    def test_status_prints_quantiles_and_provenance(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        cache_path = self._write_journal(
            tmp_path,
            [
                _entry(duration=1.0),
                _entry(duration=2.0),
                _entry(key='v2:["fig6","Memory"]', duration=4.0),
                _entry(source=SOURCE_DISK_CACHE, duration=0.0),
                _entry(outcome="failed", error="boom", duration=0.1),
            ],
        )
        monkeypatch.setenv("REPRO_CACHE", cache_path)
        assert cli.main(["status"]) == 0
        out = capsys.readouterr().out
        assert "Simulated run durations per figure" in out
        assert "fig2" in out and "fig6" in out
        assert "p50" in out and "p95" in out
        assert "disk-cache: 1" in out
        assert "simulated: 4" in out
        assert "boom" in out

    def test_status_positional_spelling_still_works(self, tmp_path, monkeypatch,
                                                    capsys):
        """``repro-experiments status`` routes through figures_main."""
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
        assert cli.figures_main(["status"]) == 0
        assert "run journal empty" in capsys.readouterr().out

    def test_failure_lines_carry_trace_ids(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        trace = "fe" * 16
        entry = _entry(outcome="failed", error="kaboom")
        entry.trace = trace
        cache_path = self._write_journal(tmp_path, [entry])
        monkeypatch.setenv("REPRO_CACHE", cache_path)
        assert cli.main(["status"]) == 0
        out = capsys.readouterr().out
        assert f"trace={trace[:16]}" in out
        assert "kaboom" in out

    def test_status_trace_filter_across_rotated_segments(self, tmp_path,
                                                         monkeypatch, capsys):
        from repro import cli
        from repro.runtime import default_journal_path

        trace = "ab" * 16
        cache_path = str(tmp_path / "cache.json")
        # max_bytes=1 rotates on every append: the trace's records end up
        # spread over several segments, and the filter must see them all.
        journal = Journal(default_journal_path(cache_path), max_bytes=1,
                          max_segments=8)
        wanted = _entry(key='v2:["fig2","hit"]')
        wanted.trace = trace
        other = _entry(key='v2:["fig2","miss"]')
        other.trace = "cd" * 16
        journal.append(wanted)
        journal.event({"event": "attempt", "trace": trace, "attempt": 1})
        journal.append(other)
        monkeypatch.setenv("REPRO_CACHE", cache_path)
        # Prefix match: operators paste the short id from exemplars.
        assert cli.main(["status", "--trace", trace[:8]]) == 0
        out = capsys.readouterr().out
        assert '"hit"' in out and '"miss"' not in out
        assert "[attempt]" in out and "attempt=1" in out

    def test_status_trace_filter_no_matches(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        cache_path = self._write_journal(tmp_path, [_entry()])
        monkeypatch.setenv("REPRO_CACHE", cache_path)
        assert cli.main(["status", "--trace", "beef"]) == 0
        assert "no journal records for trace" in capsys.readouterr().out
