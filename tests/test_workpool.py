"""Work pool, file locks, and cross-process cache/journal/tracer safety."""

import os
import time

import pytest

from repro.profiling import tracer
from repro.runtime import FileLock, WorkPool, current_worker_id, jobs_from_env
from repro.runtime.cache import RunCache, canonical_key, record_digest
from repro.runtime.journal import (
    SOURCE_DISK_CACHE,
    SOURCE_SIMULATED,
    JournalEntry,
    worker_throughput,
)
from repro.runtime.workpool import resolve_jobs


# -- file locks ----------------------------------------------------------------


class TestFileLock:
    def test_acquire_creates_release_removes(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        assert lock.acquire()
        assert lock.held
        assert os.path.exists(lock.path)
        lock.release()
        assert not lock.held
        assert not os.path.exists(lock.path)

    def test_acquire_is_reentrant_while_held(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.lock"))
        assert lock.acquire()
        assert lock.acquire()  # no-op, still held
        lock.release()

    def test_contended_acquire_times_out(self, tmp_path):
        path = str(tmp_path / "x.lock")
        holder = FileLock(path)
        assert holder.acquire()
        waiter = FileLock(path, timeout_s=0.05, poll_s=0.005)
        start = time.monotonic()
        assert not waiter.acquire()
        assert time.monotonic() - start < 5.0
        holder.release()
        assert waiter.acquire()
        waiter.release()

    def test_stale_lock_reclaimed(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("999999 0.0\n")
        old = time.time() - 120.0
        os.utime(path, (old, old))
        waiter = FileLock(path, stale_after_s=60.0, timeout_s=1.0, poll_s=0.005)
        assert waiter.acquire()
        waiter.release()

    def test_fresh_foreign_lock_not_reclaimed(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("999999 0.0\n")
        waiter = FileLock(path, stale_after_s=60.0, timeout_s=0.05, poll_s=0.005)
        assert not waiter.acquire()
        assert os.path.exists(path)

    def test_two_waiter_stale_reclaim_race(self, tmp_path, monkeypatch):
        """Regression: waiter A must not delete the fresh lock waiter B
        re-created between A's stat and A's delete (the stale-reclaim
        TOCTOU).  On the old stat-then-unlink code, A unlinks B's fresh
        lock and then acquires — two holders at once."""
        from repro.runtime import locks

        path = str(tmp_path / "x.lock")
        with open(path, "w") as fh:
            fh.write("999999 0.0\n")
        old = time.time() - 120.0
        os.utime(path, (old, old))

        waiter_b = FileLock(path, stale_after_s=60.0, timeout_s=1.0, poll_s=0.005)
        state = {"fired": False}

        def interleave():
            # Fires inside waiter A's reclaim, between its stat and its
            # delete: waiter B reclaims the stale lock and creates a
            # fresh one (B now legitimately holds the lock).
            if state["fired"]:
                return
            state["fired"] = True
            assert waiter_b.acquire()

        monkeypatch.setattr(locks, "_reclaim_race_window", interleave)
        waiter_a = FileLock(path, stale_after_s=60.0, timeout_s=0.1, poll_s=0.005)
        acquired_a = waiter_a.acquire()

        # B holds a fresh lock, so A must not have acquired on top of it.
        assert state["fired"]
        assert waiter_b.held
        assert not acquired_a, "two waiters hold the same lock (TOCTOU reclaim)"
        # B's fresh lockfile survived A's reclaim attempt.
        assert os.path.exists(path)
        waiter_b.release()
        assert waiter_a.acquire()
        waiter_a.release()

    def test_context_manager_raises_on_timeout(self, tmp_path):
        path = str(tmp_path / "x.lock")
        holder = FileLock(path)
        assert holder.acquire()
        with pytest.raises(TimeoutError):
            with FileLock(path, timeout_s=0.05, poll_s=0.005):
                pass
        holder.release()
        with FileLock(path) as lock:
            assert lock.held
        assert not os.path.exists(path)


# -- job-count resolution ------------------------------------------------------


class TestJobResolution:
    def test_env_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env() == 1
        assert jobs_from_env(default=3) == 3

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert jobs_from_env() == 4

    def test_env_zero_means_all_cores(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert jobs_from_env() == (os.cpu_count() or 1)

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert jobs_from_env() == 1

    def test_cli_value_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(2) == 2
        assert resolve_jobs(None) == 4
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-3) == 1


# -- the pool ------------------------------------------------------------------


def _echo_cell(task):
    """Module-level so spawn workers can pickle it by qualified name."""
    with tracer.span("cell", cat="test"):
        pass
    return (task, os.getpid(), current_worker_id())


class TestWorkPoolSerial:
    def test_serial_runs_inline_in_order(self):
        pool = WorkPool.serial()
        assert not pool.parallel
        results = pool.map(_echo_cell, ["a", "b", "c"])
        assert [task for task, _, _ in results] == ["a", "b", "c"]
        assert all(pid == os.getpid() for _, pid, _ in results)
        assert all(worker == "" for _, _, worker in results)

    def test_serial_ignores_repro_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "8")
        assert WorkPool.serial().jobs == 1
        assert WorkPool().jobs == 8

    def test_empty_task_list(self):
        assert WorkPool.serial().map(_echo_cell, []) == []

    def test_lambdas_allowed_when_serial(self):
        # Serial pools never pickle, so closures work (the figure
        # harnesses rely on this for the default pool-less path).
        assert WorkPool.serial().map(lambda t: t * 2, [1, 2]) == [2, 4]


class TestWorkPoolParallel:
    def test_parallel_preserves_order_and_tags_workers(self):
        # One spawn pool exercises ordering, worker tagging and the
        # tracer span round-trip in a single (expensive) fan-out.
        trace = tracer.Tracer()
        with tracer.install(trace), WorkPool(jobs=2) as pool:
            assert pool.parallel
            results = pool.map(_echo_cell, list(range(6)))
        assert [task for task, _, _ in results] == list(range(6))
        parent = os.getpid()
        worker_pids = {pid for _, pid, _ in results}
        assert parent not in worker_pids
        for _, pid, worker in results:
            assert worker == str(pid)
        # Worker spans were absorbed under their real pids.
        events = trace.chrome_events()
        cell_pids = {e["pid"] for e in events if e.get("name") == "cell"}
        assert cell_pids == worker_pids


# -- cross-process cache semantics --------------------------------------------


def _record(seconds):
    return {"seconds": seconds}


class TestCacheMergeSave:
    def test_concurrent_writers_do_not_lose_records(self, tmp_path):
        path = str(tmp_path / "cache.json")
        a = RunCache(path)
        b = RunCache(path)  # loaded before a saves anything
        a.put(canonical_key(("ka",)), _record(1.0))
        b.put(canonical_key(("kb",)), _record(2.0))
        merged = RunCache(path)
        assert merged.get(canonical_key(("ka",))) == _record(1.0)
        assert merged.get(canonical_key(("kb",))) == _record(2.0)

    def test_reload_sees_sibling_writes(self, tmp_path):
        path = str(tmp_path / "cache.json")
        reader = RunCache(path)
        writer = RunCache(path)
        key = canonical_key(("k",))
        writer.put(key, _record(3.0))
        assert reader.get(key) is None  # stale in-memory view
        assert reader.reload(key) == _record(3.0)
        assert reader.get(key) == _record(3.0)  # adopted

    def test_reload_prefers_memory(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = RunCache(path)
        key = canonical_key(("k",))
        cache.put(key, _record(4.0))
        assert cache.reload(key) == _record(4.0)

    def test_reload_missing_key(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache.json"))
        assert cache.reload(canonical_key(("absent",))) is None

    def test_key_lock_is_per_key_and_filesystem_safe(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache.json"))
        weird_key = canonical_key(("a/b", "c" * 300))
        lock1 = cache.key_lock(weird_key)
        lock2 = cache.key_lock(canonical_key(("other",)))
        assert lock1 is not None and lock2 is not None
        assert lock1.path != lock2.path
        assert lock1.acquire() and lock2.acquire()
        lock1.release()
        lock2.release()

    def test_key_lock_none_for_memory_only_cache(self):
        assert RunCache(None).key_lock("k") is None

    def test_save_survives_held_cache_lock(self, tmp_path):
        # The cache-level lock is an optimisation: a busy lock must not
        # block or fail the save (the rename is atomic regardless).
        path = str(tmp_path / "cache.json")
        cache = RunCache(path)
        blocker = FileLock(f"{path}.lock")
        assert blocker.acquire()
        try:
            key = canonical_key(("k",))
            cache.records[key] = {
                "digest": record_digest(_record(5.0)),
                "record": _record(5.0),
            }
            start = time.monotonic()
            cache.save()
            assert time.monotonic() - start < 15.0
        finally:
            blocker.release()
        assert RunCache(path).get(key) == _record(5.0)


# -- journal worker attribution ------------------------------------------------


def _journal_entry(ts, worker, source=SOURCE_SIMULATED):
    return JournalEntry(
        ts=ts, key='v2:["fig2"]', outcome="completed", duration_s=0.5,
        attempts=1, source=source, worker=worker,
    )


class TestWorkerThroughput:
    def test_groups_serial_and_workers(self):
        entries = [
            _journal_entry(0.0, ""),
            _journal_entry(2.0, ""),
            _journal_entry(0.0, "100"),
            _journal_entry(1.0, "100"),
            _journal_entry(4.0, "100", source=SOURCE_DISK_CACHE),
        ]
        stats = worker_throughput(entries)
        assert set(stats) == {"serial", "100"}
        assert stats["serial"]["attempts"] == 2
        assert stats["serial"]["throughput_per_s"] == pytest.approx(1.0)
        assert stats["100"]["attempts"] == 3
        assert stats["100"]["simulated"] == 2
        assert stats["100"]["throughput_per_s"] == pytest.approx(3 / 4)

    def test_single_entry_window_reports_zero(self):
        stats = worker_throughput([_journal_entry(5.0, "7")])
        assert stats["7"]["throughput_per_s"] == 0.0

    def test_empty(self):
        assert worker_throughput([]) == {}
