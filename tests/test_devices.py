"""Tests for the device catalog and device-spec machinery."""

import pytest

from repro.devices import (
    DEVICE_KEYS,
    all_devices,
    get_device,
    mango_pi_d1,
    raspberry_pi_4,
    riscv_devices,
    visionfive_jh7100,
    xeon_4310t,
)
from repro.errors import DeviceError, OutOfMemoryError

KIB = 1024
MIB = 2**20
GIB = 2**30


class TestCatalogMatchesPaper:
    """Section 3.1's microarchitecture descriptions, as code."""

    def test_mango_pi(self):
        d = mango_pi_d1()
        assert d.cores == 1
        assert d.cpu.freq_ghz == 1.0
        assert d.cpu.issue_width == 1          # 5-stage single-issue in-order
        assert not d.cpu.out_of_order
        assert [c.name for c in d.caches] == ["L1"]  # no L2!
        l1 = d.cache_level("L1")
        assert l1.size_bytes == 32 * KIB and l1.ways == 4
        assert d.tlb.l1_entries == 20 and d.tlb.l2_entries == 128 and d.tlb.l2_ways == 2
        assert d.prefetch.max_stride_lines == 16  # stride <= 16 cache lines
        assert d.dram.capacity_bytes == 1 * GIB

    def test_visionfive(self):
        d = visionfive_jh7100()
        assert d.cores == 2
        assert d.cpu.issue_width == 2          # 8-stage dual-issue in-order
        assert not d.cpu.out_of_order
        l1 = d.cache_level("L1")
        l2 = d.cache_level("L2")
        assert l1.size_bytes == 32 * KIB and l1.ways == 4 and l1.policy == "random"
        assert l2.size_bytes == 128 * KIB and l2.ways == 8 and l2.policy == "random"
        assert l2.shared
        assert d.tlb.l1_entries == 40 and d.tlb.l2_entries == 512 and d.tlb.l2_ways == 1
        assert d.cpu.vector_bits == 0          # RV64IMAFDCB: no V extension

    def test_raspberry_pi(self):
        d = raspberry_pi_4()
        assert d.cores == 4
        assert d.cpu.out_of_order
        assert d.cpu.vector_bits == 128        # NEON
        assert d.dram.capacity_bytes == 4 * GIB

    def test_xeon(self):
        d = xeon_4310t()
        assert d.cores == 10                   # one socket used (NUMA avoidance)
        assert d.cpu.vector_bits == 512        # AVX-512
        assert [c.name for c in d.caches] == ["L1", "L2", "L3"]
        assert d.cache_level("L3").size_bytes == 15 * MIB
        assert not d.cache_level("L2").shared
        assert d.cache_level("L3").shared

    def test_ordering_and_lookup(self):
        assert len(DEVICE_KEYS) == 4
        assert [d.key for d in all_devices()] == DEVICE_KEYS
        assert {d.key for d in riscv_devices()} == {"mango_pi_d1", "visionfive_jh7100"}
        with pytest.raises(DeviceError):
            get_device("cray_1")

    def test_bandwidth_hierarchy_shape(self):
        """The calibrated DRAM bandwidths follow the paper's ordering."""
        xeon = xeon_4310t().dram.bandwidth_gbs
        rpi = raspberry_pi_4().dram.bandwidth_gbs
        d1 = mango_pi_d1().dram.bandwidth_gbs
        jh = visionfive_jh7100().dram.bandwidth_gbs
        assert xeon > 5 * rpi > rpi > d1 > jh  # VisionFive slowest DRAM


class TestHierarchyBuilding:
    def test_per_core_hierarchies(self):
        device = visionfive_jh7100()
        hierarchies = device.build_hierarchies(2)
        assert len(hierarchies) == 2
        # Shared 128 KiB L2 partitioned two ways.
        assert hierarchies[0].caches[1].size_bytes == 64 * KIB

    def test_private_levels_not_partitioned(self):
        device = xeon_4310t()
        hierarchies = device.build_hierarchies(10)
        assert hierarchies[0].caches[0].size_bytes == 48 * KIB
        assert hierarchies[0].caches[1].size_bytes == 1280 * KIB
        assert hierarchies[0].caches[2].size_bytes < 15 * MIB

    def test_active_core_bounds(self):
        with pytest.raises(DeviceError):
            mango_pi_d1().build_hierarchies(2)
        with pytest.raises(DeviceError):
            xeon_4310t().build_hierarchies(0)


class TestScaling:
    def test_scaled_divides_caches(self):
        device = xeon_4310t().scaled(16)
        assert device.cache_level("L1").size_bytes == 3 * KIB
        assert device.cache_level("L3").size_bytes <= 15 * MIB // 16

    def test_scaled_keeps_everything_else(self):
        device = raspberry_pi_4().scaled(16)
        original = raspberry_pi_4()
        assert device.cpu == original.cpu
        assert device.dram == original.dram
        assert device.tlb == original.tlb

    def test_scale_clamps_to_one_set(self):
        device = mango_pi_d1().scaled(10_000)
        l1 = device.cache_level("L1")
        assert l1.size_bytes == l1.ways * 64

    def test_scale_one_is_identity(self):
        device = mango_pi_d1()
        assert device.scaled(1) is device

    def test_bad_scale(self):
        with pytest.raises(DeviceError):
            mango_pi_d1().scaled(0)


class TestCapacity:
    def test_paper_exclusion_rule(self):
        """16384^2 f64 (2 GiB) exceeds the Mango Pi's 1 GB — Fig. 2's
        missing bars."""
        d1 = mango_pi_d1()
        big = 16384 * 16384 * 8
        small = 8192 * 8192 * 8
        assert not d1.fits_in_dram(big)
        assert d1.fits_in_dram(small)
        with pytest.raises(OutOfMemoryError):
            d1.check_capacity(big)

    def test_other_devices_fit_both(self):
        big = 16384 * 16384 * 8
        for key in ("xeon_4310t", "raspberry_pi_4", "visionfive_jh7100"):
            assert get_device(key).fits_in_dram(big)
