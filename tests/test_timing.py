"""Tests for the timing model and DRAM contention."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.opcount import OpCounts
from repro.devices import mango_pi_d1, xeon_4310t
from repro.exec.trace import CoreWork
from repro.memsim.stats import HierarchySnapshot, LevelSnapshot
from repro.timing import (
    compute_cycles,
    equal_share_makespan,
    feasible,
    instruction_mix,
    makespan,
    time_core,
    time_run,
)


def _work(loads=0, stores=0, flops=0, fmas=0, int_ops=0, vector=False):
    counts = OpCounts(
        flops=flops,
        fmas=fmas,
        loads=loads,
        stores=stores,
        bytes_loaded=loads * 8,
        bytes_stored=stores * 8,
        int_ops=int_ops,
    )
    work = CoreWork()
    if vector:
        work.vector = counts
    else:
        work.scalar = counts
    return work


def _snapshot(levels, dram_read=0, dram_written=0, tlb=0, line_size=64):
    return HierarchySnapshot(
        [LevelSnapshot(name, h, m, p, w) for name, h, m, p, w in levels],
        dram_read,
        dram_written,
        tlb,
        line_size,
    )


class TestComputeCycles:
    def test_single_issue_inorder(self):
        cpu = mango_pi_d1().cpu
        # 3 instructions on a 1-wide core: 3 cycles.
        assert compute_cycles(_work(loads=2, flops=1), cpu) == pytest.approx(3.0)

    def test_mem_port_bound(self):
        cpu = xeon_4310t().cpu
        cycles = compute_cycles(_work(loads=300), cpu)
        assert cycles == pytest.approx(100.0)  # 3 mem ports

    def test_fma_fusion_reduces_instructions(self):
        cpu = mango_pi_d1().cpu
        fused = compute_cycles(_work(flops=200, fmas=100), cpu)
        unfused = compute_cycles(_work(flops=200), cpu)
        assert fused == unfused / 2

    def test_vector_lanes_divide_work(self):
        cpu = xeon_4310t().cpu  # 512-bit = 8 f64 lanes
        scalar = instruction_mix(_work(loads=800), cpu)
        vector = instruction_mix(_work(loads=800, vector=True), cpu)
        assert vector.mem == pytest.approx(scalar.mem / 8)

    def test_no_vector_unit_keeps_scalar_cost(self):
        cpu = mango_pi_d1().cpu  # vector_bits = 0
        scalar = instruction_mix(_work(loads=800), cpu)
        vector = instruction_mix(_work(loads=800, vector=True), cpu)
        assert vector.mem == scalar.mem


class TestCoreTiming:
    def test_exposed_latency_hidden_by_prefetch(self):
        device = mango_pi_d1()
        snap_covered = _snapshot([("L1", 0, 100, 100, 0)], dram_read=100)
        snap_exposed = _snapshot([("L1", 0, 100, 0, 0)], dram_read=100)
        covered = time_core(device, _work(loads=100), snap_covered)
        exposed = time_core(device, _work(loads=100), snap_exposed)
        assert covered.exposed_latency == 0
        assert exposed.exposed_latency > 0

    def test_mlp_divides_latency(self):
        xeon = xeon_4310t()
        snap = _snapshot(
            [("L1", 0, 100, 0, 0), ("L2", 0, 100, 0, 0), ("L3", 0, 100, 0, 0)],
            dram_read=100,
        )
        timing = time_core(xeon, _work(loads=100), snap)
        snap_levels = snap.levels
        # All latency terms divided by mlp=10.
        raw = (
            100 * xeon.caches[1].latency_cycles
            + 100 * xeon.caches[2].latency_cycles
            + 100 * xeon.dram.latency_ns * xeon.cpu.freq_ghz
        )
        assert timing.exposed_latency == pytest.approx(raw / 10)

    def test_level_count_mismatch_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            time_core(xeon_4310t(), _work(), _snapshot([("L1", 0, 0, 0, 0)]))

    def test_tlb_walk_cycles(self):
        device = mango_pi_d1()
        snap = _snapshot([("L1", 0, 0, 0, 0)], tlb=10)
        timing = time_core(device, _work(), snap)
        assert timing.tlb == 10 * device.tlb.walk_cycles


class TestContention:
    def test_no_dram_bytes(self):
        assert makespan([1.0, 2.0], [0, 0], 1e9, 1e9) == 2.0

    def test_aggregate_bandwidth_bound(self):
        # 2 cores, each needs 1 GB, total bw 1 GB/s: at least 2 seconds.
        t = makespan([0.0, 0.0], [1e9, 1e9], 1e9, 1e9)
        assert t == pytest.approx(2.0, rel=1e-3)

    def test_per_core_bandwidth_bound(self):
        # One core, 1 GB at a 0.5 GB/s core link.
        t = makespan([0.0], [1e9], 10e9, 0.5e9)
        assert t == pytest.approx(2.0, rel=1e-3)

    def test_heterogeneous_cores_water_fill(self):
        # Core A busy 1s with no traffic; core B streams 1 GB. Total bw 1 GB/s.
        t = makespan([1.0, 0.0], [0.0, 1e9], 1e9, 1e9)
        assert t == pytest.approx(1.0, rel=1e-2)

    def test_water_fill_never_worse_than_equal_share(self):
        other = [0.1, 0.2, 0.0, 0.5]
        traffic = [1e8, 5e8, 0.0, 2e8]
        wf = makespan(other, traffic, 2e9, 1e9)
        eq = equal_share_makespan(other, traffic, 2e9, 1e9)
        assert wf <= eq + 1e-9

    def test_feasibility_is_monotone(self):
        other = [0.1, 0.3]
        traffic = [1e9, 2e9]
        t = makespan(other, traffic, 3e9, 2e9)
        assert feasible(t * 1.01, other, traffic, 3e9, 2e9)
        assert not feasible(t * 0.9, other, traffic, 3e9, 2e9)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            makespan([1.0], [1.0, 2.0], 1e9, 1e9)
        with pytest.raises(ValueError):
            makespan([1.0], [1.0], 0, 1e9)

    def test_zero_slack_core_with_traffic_is_infeasible(self):
        # A core busy right up to the deadline cannot move any bytes by it,
        # no matter how much bandwidth is available.
        assert not feasible(1.0, [1.0], [64.0], 1e12, 1e12)
        assert feasible(1.0, [1.0], [0.0], 1e12, 1e12)

    def test_zero_slack_core_pushes_makespan_past_busy_time(self):
        t = makespan([1.0], [1e6], 1e9, 1e9)
        assert t > 1.0
        assert t == pytest.approx(1.0 + 1e6 / 1e9, rel=1e-3)

    def test_zero_byte_cores_bounded_by_busy_time_only(self):
        other = [0.5, 2.5, 1.0]
        zeros = [0.0, 0.0, 0.0]
        assert makespan(other, zeros, 1e9, 1e9) == 2.5
        assert equal_share_makespan(other, zeros, 1e9, 1e9) == 2.5

    def test_zero_byte_core_does_not_steal_bandwidth(self):
        # Water-filling gives the idle core nothing; equal-share wastes a
        # 1/n slice on it and finishes later.
        other = [0.0, 0.0]
        traffic = [2e9, 0.0]
        wf = makespan(other, traffic, 2e9, 2e9)
        eq = equal_share_makespan(other, traffic, 2e9, 2e9)
        assert wf == pytest.approx(1.0, rel=1e-3)
        assert eq == pytest.approx(2.0, rel=1e-3)

    @settings(max_examples=200)
    @given(
        st.lists(
            st.tuples(st.floats(0, 2), st.floats(0, 1e9)),
            min_size=1,
            max_size=8,
        ),
        st.floats(1e6, 1e11),
        st.floats(1e6, 1e11),
    )
    def test_water_fill_at_most_equal_share(self, cores, total_bw, core_bw):
        # The equal-share schedule is one feasible allocation, so the
        # water-filling optimum can never be slower.
        other = [o for o, _ in cores]
        traffic = [t for _, t in cores]
        wf = makespan(other, traffic, total_bw, core_bw)
        eq = equal_share_makespan(other, traffic, total_bw, core_bw)
        assert wf <= eq * (1 + 1e-6) + 1e-9

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(0, 2), min_size=1, max_size=6),
        st.floats(1e6, 1e10),
        st.floats(1e6, 1e10),
    )
    def test_lower_bounds_hold(self, other, total_bw, core_bw):
        traffic = [o * 1e8 for o in other]
        t = makespan(other, traffic, total_bw, core_bw)
        assert t >= max(other) - 1e-12
        assert t >= sum(traffic) / total_bw - 1e-6 * t - 1e-12


class TestTimeRun:
    def test_parallel_faster_than_serial_sum(self):
        device = xeon_4310t()
        work = _work(loads=10000, flops=5000)
        snap = _snapshot(
            [("L1", 9000, 1000, 900, 0), ("L2", 500, 500, 450, 0), ("L3", 250, 250, 200, 0)],
            dram_read=250,
        )
        one = time_run(device, [work], [snap])
        four = time_run(device, [work] * 4, [snap] * 4)
        # Four cores doing 4x the work in barely more time than one.
        assert four.seconds < 2 * one.seconds

    def test_breakdown_keys(self):
        device = mango_pi_d1()
        result = time_run(device, [_work(loads=10)], [_snapshot([("L1", 10, 0, 0, 0)])])
        assert set(result.breakdown()) == {
            "compute_cycles",
            "transfer_cycles",
            "exposed_latency_cycles",
            "tlb_cycles",
            "dram_bytes",
        }
        assert result.bottleneck
