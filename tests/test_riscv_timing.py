"""Tests for timing emulated machine-code runs on the device models."""

import numpy as np
import pytest

from repro.devices import mango_pi_d1
from repro.errors import SimulationError
from repro.kernels import stream
from repro.riscv import compile_and_run, time_emulated_run, time_program_on_device
from repro.riscv.timing import work_from_stats
from repro.transforms import AutoVectorize


@pytest.fixture
def triad_inputs(rng):
    n = 512
    return n, {"b": rng.random(n), "c": rng.random(n)}


class TestWorkFromStats:
    def test_counts_plumbed(self, triad_inputs):
        n, inputs = triad_inputs
        _, emulator = compile_and_run(stream.triad(n, parallel=False), inputs)
        work = work_from_stats(emulator)
        assert work.scalar.loads == emulator.stats.loads
        assert work.scalar.stores == emulator.stats.stores
        assert work.scalar.flops == emulator.stats.flops
        assert work.scalar.int_ops > 0
        # The triad does 2n loads, n stores, 2n flops.
        assert work.scalar.loads == 2 * n
        assert work.scalar.stores == n


class TestTimeEmulatedRun:
    def test_requires_trace(self, triad_inputs):
        n, inputs = triad_inputs
        _, emulator = compile_and_run(stream.triad(n, parallel=False), inputs)
        with pytest.raises(SimulationError, match="trace"):
            time_emulated_run(emulator, mango_pi_d1())

    def test_requires_halted(self, triad_inputs):
        from repro.riscv import assemble
        from repro.riscv.emulator import Emulator

        emulator = Emulator(assemble("nop\nebreak\n"))
        with pytest.raises(SimulationError, match="finished"):
            time_emulated_run(emulator, mango_pi_d1())

    def test_timing_result(self, triad_inputs):
        n, inputs = triad_inputs
        result = time_program_on_device(
            stream.triad(n, parallel=False), mango_pi_d1(), inputs
        )
        assert result.seconds > 0
        assert result.cycles > result.instructions / 2  # single-issue core
        assert 0 < result.ipc <= 1.0  # in-order 1-wide cannot exceed 1

    def test_rvv_faster_than_scalar_on_c906_model(self, triad_inputs):
        """The paper's outlook: the C906 carries a vector unit that compiled
        C code does not use; RVV code should beat scalar on its model."""
        n, inputs = triad_inputs
        device = mango_pi_d1()
        program = stream.triad(n, parallel=False)
        scalar = time_program_on_device(program, device, inputs)
        vector = time_program_on_device(
            AutoVectorize().run(program), device, inputs, use_rvv=True, vlen_bits=128
        )
        assert vector.instructions < scalar.instructions
        assert vector.seconds < scalar.seconds

    def test_machine_code_timing_close_to_ir_timing(self, triad_inputs):
        """The two independent paths to a time estimate (IR symbolic trace
        vs emulated machine-code trace) must land in the same ballpark."""
        from repro.simulate import simulate

        n, inputs = triad_inputs
        device = mango_pi_d1()
        program = stream.triad(n, parallel=False)
        ir_time = simulate(program, device).seconds
        mc_time = time_program_on_device(program, device, inputs).seconds
        # Machine code pays real address-arithmetic instructions the IR
        # model only approximates; within 4x is agreement here.
        assert mc_time / ir_time < 4.0
        assert ir_time / mc_time < 4.0
