"""Tests for IR construction: types, arrays, builder, statements, printer."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    Affine,
    Array,
    Block,
    DType,
    For,
    LoopBuilder,
    MemoryLayout,
    Program,
    Store,
    find_loop,
    format_program,
    from_numpy,
    loop_nest_vars,
    loops_in,
    stores_in,
)
from repro.ir.stmt import LocalAssign, rename_stmt, substitute_stmt

from tests.conftest import transpose_program, triad_program


class TestDType:
    @pytest.mark.parametrize(
        "dtype,size", [(DType.F32, 4), (DType.F64, 8), (DType.I8, 1), (DType.I64, 8), (DType.U8, 1)]
    )
    def test_sizes(self, dtype, size):
        assert dtype.size == size

    def test_is_float(self):
        assert DType.F64.is_float and DType.F32.is_float
        assert not DType.I32.is_float

    def test_numpy_round_trip(self):
        for dtype in DType:
            assert from_numpy(dtype.numpy) == dtype

    def test_from_numpy_rejects_unknown(self):
        with pytest.raises(ValueError):
            from_numpy(np.dtype(np.complex128))


class TestArray:
    def test_strides_row_major(self):
        arr = Array("a", DType.F64, (4, 5, 6))
        assert arr.strides() == (30, 6, 1)

    def test_linearize(self):
        arr = Array("a", DType.F64, (4, 8))
        offset = arr.linearize((Affine.var("i"), Affine.var("j")))
        assert offset.evaluate({"i": 2, "j": 3}) == 19

    def test_nbytes(self):
        assert Array("a", DType.F32, (10, 10)).nbytes == 400

    def test_invalid_shape(self):
        with pytest.raises(IRError):
            Array("a", DType.F64, (0,))

    def test_invalid_scope(self):
        with pytest.raises(IRError):
            Array("a", DType.F64, (4,), scope="stack")

    def test_data_shape_checked(self):
        with pytest.raises(IRError):
            Array("a", DType.F64, (4,), data=np.zeros((5,)))

    def test_data_cast_to_dtype(self):
        arr = Array("a", DType.F32, (2,), data=np.array([1.0, 2.0], dtype=np.float64))
        assert arr.data.dtype == np.float32


class TestBuilder:
    def test_triad_structure(self):
        program = triad_program(16)
        loops = list(loops_in(program.body))
        assert len(loops) == 1
        assert loops[0].var == "i"
        assert len(list(stores_in(program.body))) == 1

    def test_duplicate_array_rejected(self):
        b = LoopBuilder("p")
        b.array("a", DType.F64, (4,))
        with pytest.raises(IRError):
            b.array("a", DType.F64, (4,))

    def test_rank_mismatch_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4, 4))
        with pytest.raises(IRError):
            a[Affine.var("i")]

    def test_non_affine_subscript_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        with pytest.raises(IRError):
            a[1.5]

    def test_constant_array(self):
        b = LoopBuilder("p")
        k = b.constant_array("k", np.arange(4, dtype=np.float32))
        with b.loop("i", 0, 4) as i:
            b.store(k, i, k[i])
        program = b.build()
        assert program.array("k").data is not None
        assert program.array("k").dtype == DType.F32

    def test_build_twice_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        with b.loop("i", 0, 4) as i:
            b.store(a, i, 1.0)
        b.build()
        with pytest.raises(IRError):
            b.store(a, 0, 1.0)

    def test_declared_unused_arrays_kept(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        b.array("unused", DType.F64, (4,))
        with b.loop("i", 0, 4) as i:
            b.store(a, i, 1.0)
        program = b.build()
        assert {arr.name for arr in program.arrays} == {"a", "unused"}


class TestProgram:
    def test_footprint_counts_global_only(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (8,))
        s = b.array("s", DType.F64, (8,), scope="local")
        r = b.array("r", DType.F64, (2,), scope="register")
        with b.loop("i", 0, 8) as i:
            b.store(s, i, a[i])
        with b.loop("j", 0, 2) as j:
            b.store(r, j, 0.0)
        program = b.build()
        assert program.footprint_bytes() == 64

    def test_array_lookup(self):
        program = triad_program(8)
        assert program.array("a").name == "a"
        with pytest.raises(IRError):
            program.array("zzz")

    def test_distinct_arrays_same_name_rejected(self):
        a1 = Array("a", DType.F64, (4,))
        a2 = Array("a", DType.F64, (4,))
        body = Block(
            [
                Store(a1, [Affine(0)], 1.0),
                Store(a2, [Affine(0)], 2.0),
            ]
        )
        with pytest.raises(IRError):
            Program("p", body)


class TestMemoryLayout:
    def test_page_alignment(self):
        program = triad_program(8)
        layout = MemoryLayout(program)
        for arr in program.arrays:
            assert layout.address_of(arr) % 4096 == 0

    def test_no_overlap(self):
        program = triad_program(100)
        layout = MemoryLayout(program)
        spans = sorted(
            (layout.address_of(arr), layout.address_of(arr) + arr.nbytes)
            for arr in program.arrays
        )
        for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
            assert hi1 <= lo2

    def test_local_arrays_per_thread(self):
        b = LoopBuilder("p")
        s = b.array("s", DType.F64, (16,), scope="local")
        with b.loop("i", 0, 16) as i:
            b.store(s, i, 1.0)
        program = b.build()
        layout = MemoryLayout(program, num_threads=4)
        addresses = {layout.address_of(program.array("s"), t) for t in range(4)}
        assert len(addresses) == 4

    def test_register_array_has_no_address(self):
        b = LoopBuilder("p")
        r = b.array("r", DType.F32, (3,), scope="register")
        with b.loop("i", 0, 3) as i:
            b.store(r, i, 0.0)
        program = b.build()
        layout = MemoryLayout(program)
        with pytest.raises(IRError):
            layout.address_of(program.array("r"))


class TestStatementUtilities:
    def test_loop_nest_vars(self):
        program = transpose_program(8)
        assert loop_nest_vars(program.body) == ("i", "j")

    def test_find_loop(self):
        program = transpose_program(8)
        assert find_loop(program.body, "j").var == "j"
        with pytest.raises(IRError):
            find_loop(program.body, "zz")

    def test_substitute_stmt(self):
        program = triad_program(8)
        body = substitute_stmt(program.body, "n_missing", 1)  # no-op substitution
        assert isinstance(body, Block)

    def test_substitute_shadowed_var_rejected(self):
        program = triad_program(8)
        with pytest.raises(IRError):
            substitute_stmt(program.body, "i", 3)

    def test_rename_stmt(self):
        program = transpose_program(4)
        renamed = rename_stmt(program.body, {"i": "x"})
        assert loop_nest_vars(renamed) == ("x", "j")

    def test_for_trip_count(self):
        loop = For("i", 3, 10, Block([]), step=2)
        assert loop.trip_count({}) == 4
        assert list(loop.iter_values({})) == [3, 5, 7, 9]

    def test_for_zero_trips(self):
        loop = For("i", 10, 3, Block([]))
        assert loop.trip_count({}) == 0

    def test_for_bad_step(self):
        with pytest.raises(IRError):
            For("i", 0, 4, Block([]), step=0)

    def test_for_bad_schedule(self):
        with pytest.raises(IRError):
            For("i", 0, 4, Block([]), parallel=True, schedule="guided")


class TestPrinter:
    def test_format_transpose(self):
        text = format_program(transpose_program(8))
        assert "for (i = 0; i < 8; i++)" in text
        assert "mat[i][j] = mat[j][i];" in text
        assert "f64 mat[8][8];" in text

    def test_format_parallel_and_min_bounds(self):
        from repro.kernels import transpose

        text = format_program(transpose.blocking(16, block=4))
        assert "parallel(static)" in text
        assert "min(" in text and "max(" in text

    def test_format_accumulate(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        with b.loop("i", 0, 4) as i:
            b.accumulate(a, i, 2.0)
        assert "+=" in format_program(b.build())
