"""Tests for the experiment harness plumbing (config, runner, reports)."""

import pytest

from repro.devices import get_device
from repro.experiments import CACHE_SCALE, Runner, RunRecord, fig1, fig2, fig3, fig6, fig7
from repro.experiments.config import (
    blur_workload,
    device_fits_paper_workload,
    scaled_device,
    transpose_workload,
)
from repro.experiments.report import render_table, seconds_label
from repro.metrics.speedup import speedup_row

from tests.conftest import triad_program


class TestConfig:
    def test_scaled_device_cache_ratio(self):
        real = get_device("xeon_4310t")
        scaled = scaled_device("xeon_4310t")
        ratio = real.cache_level("L1").size_bytes / scaled.cache_level("L1").size_bytes
        assert ratio == CACHE_SCALE

    def test_transpose_workloads(self):
        small = transpose_workload(8192)
        big = transpose_workload(16384)
        assert small.paper_bytes == 8192**2 * 8
        assert big.paper_bytes == 4 * small.paper_bytes
        assert small.sim_bytes < small.paper_bytes

    def test_simulated_matrix_exceeds_scaled_llc(self):
        """The scaling must preserve 'matrix does not fit in LLC'."""
        for key in ("xeon_4310t", "raspberry_pi_4", "visionfive_jh7100", "mango_pi_d1"):
            device = scaled_device(key)
            llc = device.caches[-1].size_bytes
            assert transpose_workload(8192).sim_bytes > 2 * llc

    def test_simulated_blur_exceeds_scaled_llc(self):
        for key in ("xeon_4310t", "raspberry_pi_4"):
            device = scaled_device(key)
            assert blur_workload().sim_bytes > device.caches[-1].size_bytes

    def test_capacity_rule_uses_paper_sizes(self):
        assert not device_fits_paper_workload("mango_pi_d1", transpose_workload(16384).paper_bytes)
        assert device_fits_paper_workload("mango_pi_d1", transpose_workload(8192).paper_bytes)
        assert device_fits_paper_workload("xeon_4310t", transpose_workload(16384).paper_bytes)


class TestRunner:
    def test_memoizes(self, tmp_path):
        runner = Runner(str(tmp_path / "cache.json"))
        calls = []

        def build():
            calls.append(1)
            return triad_program(64)

        device = get_device("mango_pi_d1")
        first = runner.run(("k", 1), build, device)
        second = runner.run(("k", 1), build, device)
        assert len(calls) == 1
        assert first == second
        assert isinstance(first, RunRecord)

    def test_disk_cache_survives_new_runner(self, tmp_path):
        path = str(tmp_path / "cache.json")
        device = get_device("mango_pi_d1")
        Runner(path).run(("k", 2), lambda: triad_program(64), device)
        calls = []
        reloaded = Runner(path)
        record = reloaded.run(("k", 2), lambda: calls.append(1) or triad_program(64), device)
        assert not calls
        assert record.device_key == "mango_pi_d1"

    def test_distinct_keys_distinct_runs(self, tmp_path):
        runner = Runner(str(tmp_path / "cache.json"))
        device = get_device("mango_pi_d1")
        a = runner.run(("a",), lambda: triad_program(64), device)
        b = runner.run(("b",), lambda: triad_program(128), device)
        assert a.flops != b.flops


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["x", "value"], [["a", 1.5], ["bb", 0.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_seconds_label(self):
        assert seconds_label(2.5) == "2.50 s"
        assert seconds_label(0.0025) == "2.50 ms"
        assert seconds_label(2.5e-6) == "2.5 us"

    def test_fig_render_functions_on_synthetic_rows(self):
        rows = [fig1.Fig1Row("dev", "L1", 1.0, 2.0, 3.0, 4.0)]
        assert "Fig. 1" in fig1.render(rows)
        assert rows[0].best_gbs == 4.0

        panel = fig2.Fig2Panel(paper_n=8192, sim_n=512)
        panel.rows.append(
            speedup_row("dev", {"Naive": 1.0, "Parallel": 0.5, "Blocking": 0.25, "Manual_blocking": 0.2, "Dynamic": 0.1})
        )
        panel.excluded.append("mango_pi_d1")
        text = fig2.render([panel])
        assert "does not fit" in text and "4.00x" in text

        f3 = [fig3.Fig3Row("dev", 8192, 0.1, "Dynamic", 0.8)]
        assert "Dynamic" in fig3.render(f3)

        result = fig6.Fig6Result(width=192, height=160, filter_size=19)
        result.rows.append(
            speedup_row("dev", {"Naive": 1.0, "Unit-stride": 0.9, "1D_kernels": 0.5, "Memory": 0.1, "Parallel": 0.05})
        )
        assert "Fig. 6" in fig6.render(result)

        f7 = [fig7.Fig7Row("dev", {"1D_kernels": 0.1, "Memory": 0.2, "Parallel": 0.4}, {"1D_kernels": 1.0, "Memory": 2.0, "Parallel": 4.0})]
        assert "Fig. 7" in fig7.render(f7)

    def test_fig7_baseline_bytes_positive(self):
        assert fig7.baseline_bytes() > 0


class TestCli:
    def test_figure_choices(self, capsys, monkeypatch):
        from repro import cli

        monkeypatch.setattr(cli.fig1, "run", lambda pool=None: [])
        monkeypatch.setattr(cli.fig1, "render", lambda rows: "FIG1OUT")
        assert cli.main(["fig1"]) == 0
        assert "FIG1OUT" in capsys.readouterr().out

    def test_bad_figure_rejected(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main(["fig99"])
