"""The symbolic dependence engine vs the concrete enumeration oracle.

Every claim the size-generic engine makes is cross-checked here against
brute-force enumeration at small sizes: a loop the engine calls parallel
must have zero concrete conflicts, a carried dependence it reports must
show up as concrete conflicting iteration pairs, and the distances must
match the observed iteration gaps exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dependence import loop_conflicts
from repro.analysis.lint.symbolic import (
    carried_dependences,
    certify_interchange_symbolic,
    certify_parallel_symbolic,
    dependence_relations,
)
from repro.errors import AnalysisError
from repro.ir import Affine, DType, LoopBuilder
from repro.ir.stmt import Block, For


def _loop_vars(stmt, out):
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            _loop_vars(child, out)
    elif isinstance(stmt, For):
        out.append(stmt.var)
        _loop_vars(stmt.body, out)
    return out


def _agree(program, var):
    """Symbolic carried-dependence claim == concrete enumeration result."""
    symbolic = carried_dependences(program, var)
    concrete = loop_conflicts(program, var)
    assert bool(symbolic) == bool(concrete), (
        f"{program.name}/{var}: symbolic={symbolic} concrete={len(concrete)}"
    )
    if symbolic and all(dep.exact for dep in symbolic):
        # Every concrete conflict's iteration gap must be one the symbolic
        # distance ranges admit.  A range may be reported under either
        # source/sink labeling when both orders occur, so the magnitude is
        # admitted if either sign of it lies in the range.
        gaps = {
            abs(c.second.loop_value - c.first.loop_value) for c in concrete
        }
        admitted = set()
        fixed = set()
        for dep in symbolic:
            lo, hi = dep.distance_range
            if dep.distance is not None:
                fixed.add(abs(dep.distance))
            for gap in gaps:
                if lo <= gap <= hi or lo <= -gap <= hi:
                    admitted.add(gap)
        assert gaps == admitted, f"{program.name}/{var}: gaps {gaps} vs {admitted}"
        if fixed:
            assert fixed <= gaps, f"{program.name}/{var}: {fixed} never observed"
    return symbolic


# ---------------------------------------------------------------------------
# Paper kernel families, every loop, small sizes
# ---------------------------------------------------------------------------

def _family_programs():
    from repro.kernels import blur, scan, stream, transpose

    programs = []
    for variant in transpose.VARIANT_ORDER:
        programs.append(transpose.build(variant, 16, block=4))
    for variant in blur.VARIANT_ORDER:
        programs.append(blur.build(variant, 12, 10, 3))
    for test in stream.TESTS:
        programs.append(stream.build(test, 24))
    programs.append(scan.naive(20))
    programs.append(scan.parallel(20))
    return programs


@pytest.mark.parametrize(
    "program", _family_programs(), ids=lambda p: p.name
)
def test_symbolic_agrees_with_enumeration_on_kernels(program):
    for var in _loop_vars(program.body, []):
        _agree(program, var)


def test_paper_parallel_loops_certify_symbolically():
    from repro.kernels import blur, transpose

    certify_parallel_symbolic(transpose.parallel(16), "i")
    certify_parallel_symbolic(transpose.blocking(16, block=4), "i_blk")
    certify_parallel_symbolic(transpose.manual_blocking(16, block=4), "i_blk")
    certify_parallel_symbolic(transpose.dynamic(16, block=4), "i_blk")
    certify_parallel_symbolic(blur.parallel(12, 10, 3), "i")
    certify_parallel_symbolic(blur.parallel(12, 10, 3), "i2")


def test_scan_recurrence_distance_is_one():
    from repro.kernels import scan

    deps = carried_dependences(scan.naive(32), "i")
    assert deps and all(dep.array == "a" for dep in deps)
    assert any(dep.distance == 1 for dep in deps)
    with pytest.raises(AnalysisError, match="carries dependences"):
        certify_parallel_symbolic(scan.naive(32), "i")


def test_transpose_swap_pairs_are_disjoint():
    # The reason the paper can parallelize the triangular swap at all.
    from repro.kernels import transpose

    for var in ("i", "j"):
        assert carried_dependences(transpose.naive(16), var) == []


# ---------------------------------------------------------------------------
# Property tests: randomly sized/shifted subscripts
# ---------------------------------------------------------------------------

def _shift_program(n, shift):
    """a[i] = a[i - shift] + 1 — carried iff 0 < shift <= n-1-lo."""
    b = LoopBuilder(f"shift_{n}_{shift}")
    a = b.array("a", DType.F64, (n + abs(shift),))
    lo = max(0, shift)
    with b.loop("i", lo, n + (shift if shift > 0 else 0)) as i:
        b.store(a, i, a[i - shift] + 1.0)
    return b.build()


@settings(max_examples=40, deadline=None)
@given(n=st.integers(4, 24), shift=st.integers(-4, 4))
def test_shift_recurrence_distance_matches_enumeration(n, shift):
    program = _shift_program(n, shift)
    deps = _agree(program, "i")
    if 0 < abs(shift) < n:
        # The carried distance is exactly |shift| (orientation-normalized).
        assert any(dep.distance == abs(shift) for dep in deps)
    elif shift == 0:
        assert deps == []
    # |shift| >= n: the loop has n iterations, the ranges never overlap;
    # _agree already asserted symbolic == concrete == empty.


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(4, 16),
    coeff_a=st.integers(1, 3),
    coeff_b=st.integers(1, 3),
    off=st.integers(0, 3),
)
def test_strided_writes_agree_with_enumeration(n, coeff_a, coeff_b, off):
    # a[coeff_a * i] vs read a[coeff_b * i + off]: carried iff the affine
    # equation has a solution within range at distinct iterations.
    b = LoopBuilder("strided")
    size = 3 * n + 4
    a = b.array("a", DType.F64, (size,))
    with b.loop("i", 0, n) as i:
        b.store(a, i * coeff_a, a[i * coeff_b + off] + 1.0)
    _agree(b.build(), "i")


@settings(max_examples=25, deadline=None)
@given(n=st.integers(3, 10), m=st.integers(3, 10))
def test_2d_skew_stencil_agrees(n, m):
    # out[i][j] = out[i-1][j+1]: the classic (1, -1) dependence.
    b = LoopBuilder("skew")
    out = b.array("out", DType.F64, (n, m))
    with b.loop("i", 1, n) as i:
        with b.loop("j", 0, m - 1) as j:
            b.store(out, (i, j), out[i - 1, j + 1] + 1.0)
    program = b.build()
    _agree(program, "i")
    _agree(program, "j")
    deps = [d for d in dependence_relations(program) if any(d.distances)]
    assert any(d.distances == (1, -1) for d in deps)
    with pytest.raises(AnalysisError):
        certify_interchange_symbolic(program, "i", "j")


def test_copy_nest_interchange_certifies():
    b = LoopBuilder("copy2d")
    src = b.array("src", DType.F64, (8, 8))
    dst = b.array("dst", DType.F64, (8, 8))
    with b.loop("i", 0, 8) as i:
        with b.loop("j", 0, 8) as j:
            b.store(dst, (i, j), src[i, j])
    certify_interchange_symbolic(b.build(), "i", "j")
