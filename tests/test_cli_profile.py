"""The ``repro profile`` CLI subcommand."""

import json

import pytest

from repro import cli

ARGS = ["profile", "transpose", "Naive", "mango_pi_d1", "--n", "64"]


def test_profile_prints_report(capsys):
    assert cli.main(ARGS) == 0
    out = capsys.readouterr().out
    assert "Profile — transpose/Naive" in out
    assert "perf counters" in out
    assert "time attribution" in out
    assert "roofline:" in out
    assert "L1.misses" in out


def test_profile_json(capsys):
    assert cli.main(ARGS + ["--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["kernel"] == "transpose"
    assert data["params"] == {"n": 64, "block": 16}
    assert data["counters"]["dram.bytes"] > 0
    assert sum(data["attribution"].values()) == pytest.approx(data["seconds"], rel=1e-9)


def test_profile_trace_chrome_schema(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert cli.main(ARGS + ["--trace", str(trace_path)]) == 0
    capsys.readouterr()
    events = json.loads(trace_path.read_text())
    assert isinstance(events, list) and events
    for event in events:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "C")
        # Chrome counter events carry values in args and must NOT have dur.
        assert ("dur" in event) == (event["ph"] == "X")
    assert {"profile", "simulate", "timing"} <= {e["name"] for e in events}
    counters = [e for e in events if e["ph"] == "C"]
    assert any(e["name"].startswith("pmu.core") for e in counters)
    assert any(e["name"].startswith("timing.core") for e in counters)


def test_profile_tree_flag(capsys):
    assert cli.main(ARGS + ["--tree"]) == 0
    out = capsys.readouterr().out
    assert "simulate" in out and "trace+memsim" in out


def test_save_baseline_then_check(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert cli.main(ARGS + ["--baseline", baseline, "--save-baseline"]) == 0
    assert cli.main(ARGS + ["--baseline", baseline, "--check"]) == 0
    capsys.readouterr()

    # Tamper with a counter: the check must fail with exit code 1.
    data = json.loads(open(baseline).read())
    entry = next(iter(data["entries"].values()))
    entry["counters"]["L1.misses"] += 1
    open(baseline, "w").write(json.dumps(data))
    assert cli.main(ARGS + ["--baseline", baseline, "--check"]) == 1
    err = capsys.readouterr().err
    assert "baseline check FAILED" in err
    assert "L1.misses" in err


def test_check_without_baseline_fails(tmp_path, capsys):
    baseline = str(tmp_path / "nothing.json")
    assert cli.main(ARGS + ["--baseline", baseline, "--check"]) == 1
    assert "no baseline entry" in capsys.readouterr().err


def test_unknown_names_exit_2(capsys):
    assert cli.main(["profile", "fft", "Naive", "mango_pi_d1"]) == 2
    assert "unknown kernel" in capsys.readouterr().err
    assert cli.main(["profile", "transpose", "Naive", "cray_1"]) == 2
    assert "unknown device" in capsys.readouterr().err


def test_quiet_suppresses_diagnostics(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    assert cli.main(ARGS + ["--baseline", baseline, "--save-baseline", "--quiet"]) == 0
    captured = capsys.readouterr()
    assert "Profile —" in captured.out  # results still on stdout
    assert "baseline" not in captured.err  # INFO diagnostics silenced
