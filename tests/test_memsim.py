"""Tests for the cache / prefetcher / TLB / hierarchy models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.exec.trace import Segment
from repro.memsim import (
    C906_PREFETCH,
    Cache,
    MemoryHierarchy,
    NO_PREFETCH,
    PrefetcherSpec,
    StridePrefetcher,
    TlbSpec,
    U74_PREFETCH,
    make_policy,
    snapshot,
)


def seg(base, stride, count, write=False, esize=8, ref=0):
    return Segment(ref, base, stride, count, write, esize)


class TestCacheBasics:
    def test_geometry(self):
        cache = Cache("L1", 32 * 1024, 4)
        assert cache.num_sets == 128

    def test_non_power_of_two_sets(self):
        cache = Cache("L3", 15 * 2**20, 12)  # the Xeon L3: 20480 sets
        assert cache.num_sets == 20480
        cache.access(12345, False)
        assert cache.stats.misses == 1

    def test_bad_size_rejected(self):
        with pytest.raises(SimulationError):
            Cache("L1", 1000, 4)

    def test_miss_then_hit(self):
        cache = Cache("L1", 4096, 4)
        hit, _ = cache.access(7, False)
        assert not hit
        hit, _ = cache.access(7, False)
        assert hit

    def test_lru_eviction_order(self):
        cache = Cache("L1", 2 * 64, 2)  # 1 set, 2 ways
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # 0 is now MRU
        cache.access(2, False)  # evicts 1
        assert cache.contains(0) and cache.contains(2) and not cache.contains(1)

    def test_dirty_writeback_reported(self):
        cache = Cache("L1", 2 * 64, 2)
        cache.access(0, True)
        cache.access(1, False)
        hit, wb = cache.access(2, False)  # evicts dirty 0
        assert wb == 0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = Cache("L1", 2 * 64, 2)
        cache.access(0, False)
        cache.access(1, False)
        _, wb = cache.access(2, False)
        assert wb is None

    def test_write_hit_sets_dirty(self):
        cache = Cache("L1", 2 * 64, 2)
        cache.access(0, False)
        cache.access(0, True)
        cache.access(1, False)
        _, wb = cache.access(2, False)
        assert wb == 0

    def test_set_isolation(self):
        cache = Cache("L1", 4 * 64 * 2, 2)  # 4 sets
        for line in range(8):  # two lines per set: fills, no eviction
            cache.access(line, False)
        assert cache.stats.misses == 8
        for line in range(8):
            hit, _ = cache.access(line, False)
            assert hit

    def test_reset(self):
        cache = Cache("L1", 4096, 4)
        cache.access(1, True)
        cache.reset()
        assert cache.stats.misses == 0
        assert not cache.contains(1)

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(0, 5000), st.booleans()), max_size=300))
    def test_capacity_never_exceeded(self, accesses):
        cache = Cache("L1", 8 * 64 * 2, 2)  # 16 lines
        resident = 0
        for line, write in accesses:
            cache.access(line, write)
        resident = sum(len(s) for s in cache._where)
        assert resident <= 16

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_second_pass_all_hits_when_fits(self, lines):
        cache = Cache("L1", 64 * 64, 64)  # fully associative, 64 lines
        unique = set(lines)
        if len(unique) > 64:
            return
        for line in lines:
            cache.access(line, False)
        before = cache.stats.hits
        for line in unique:
            hit, _ = cache.access(line, False)
            assert hit


class TestPolicies:
    def test_make_policy_unknown(self):
        with pytest.raises(SimulationError):
            make_policy("fifo", 4, 4)

    def test_random_deterministic(self):
        a = make_policy("random", 1, 8)
        b = make_policy("random", 1, 8)
        assert [a.victim(0) for _ in range(20)] == [b.victim(0) for _ in range(20)]

    def test_plru_requires_power_of_two(self):
        with pytest.raises(SimulationError):
            make_policy("plru", 4, 12)

    def test_plru_victim_is_not_most_recent(self):
        policy = make_policy("plru", 1, 4)
        for way in range(4):
            policy.on_fill(0, way)
        policy.on_hit(0, 2)
        assert policy.victim(0) != 2

    def test_plru_cache_end_to_end(self):
        cache = Cache("L1", 4 * 64, 4, policy="plru")
        for line in range(4):
            cache.access(line, False)
        for line in range(4):
            hit, _ = cache.access(line, False)
            assert hit


class TestPrefetcher:
    def test_disabled_covers_nothing(self):
        pf = StridePrefetcher(NO_PREFETCH)
        assert pf.segment_coverage(seg(0, 8, 512), 64) == 0

    def test_sequential_covered_after_training(self):
        pf = StridePrefetcher(C906_PREFETCH)
        covered = pf.segment_coverage(seg(0, 8, 512), 64)
        assert covered == 64 - C906_PREFETCH.train_lines

    def test_large_stride_beyond_capability(self):
        pf = StridePrefetcher(C906_PREFETCH)  # <= 16 lines
        covered = pf.segment_coverage(seg(0, 64 * 64, 10), 10)  # 64-line stride
        assert covered == 0

    def test_large_stride_within_u74(self):
        pf = StridePrefetcher(U74_PREFETCH)
        covered = pf.segment_coverage(seg(0, 64 * 64, 10), 10)
        assert covered > 0

    def test_cross_segment_stream_locks_on(self):
        pf = StridePrefetcher(C906_PREFETCH, line_size=64)
        delta = 256  # 4 lines between segment bases
        covered = []
        for k in range(5):
            covered.append(pf.segment_coverage(seg(k * delta, 4, 16, ref=7), 1))
        assert covered[0] == 0
        assert covered[-1] == 1  # fully covered once the stream is confident

    def test_stream_table_capacity(self):
        spec = PrefetcherSpec(name="tiny", max_stride_lines=16, streams=2)
        pf = StridePrefetcher(spec)
        for ref in range(5):
            pf.segment_coverage(seg(ref * 10_000, 4, 4, ref=ref), 1)
        assert len(pf._streams) <= 2


class TestTlb:
    def test_walks_counted(self):
        h = MemoryHierarchy(
            [Cache("L1", 4096, 4)],
            tlb=TlbSpec(l1_entries=2, l1_ways=0, walk_cycles=50),
        )
        # Touch 4 distinct pages twice: second round misses again (capacity 2)
        for _ in range(2):
            for page in range(4):
                h.process_segment(seg(page * 4096, 0, 1))
        assert h.tlb.walks == 8

    def test_two_level_filtering(self):
        h = MemoryHierarchy(
            [Cache("L1", 4096, 4)],
            tlb=TlbSpec(l1_entries=2, l1_ways=0, l2_entries=64, l2_ways=1, walk_cycles=50),
        )
        for _ in range(2):
            for page in range(4):
                h.process_segment(seg(page * 4096, 0, 1))
        # L2 TLB holds all four pages: only the first round walks.
        assert h.tlb.walks == 4

    def test_sequential_segment_pages(self):
        h = MemoryHierarchy(
            [Cache("L1", 64 * 1024, 4)],
            tlb=TlbSpec(l1_entries=8, l1_ways=0, walk_cycles=10),
        )
        h.process_segment(seg(0, 8, 2048))  # 16 KiB = 4 pages
        assert h.tlb.l1.stats.misses == 4


class TestHierarchy:
    def test_streaming_traffic(self):
        h = MemoryHierarchy([Cache("L1", 32 * 1024, 4)])
        h.process_segment(seg(0, 8, 4096))  # 32 KiB read = 512 lines
        snap = snapshot(h)
        assert snap.level("L1").misses == 512
        assert snap.dram_read_lines == 512
        assert snap.dram_written_lines == 0

    def test_write_allocate_and_flush(self):
        h = MemoryHierarchy([Cache("L1", 32 * 1024, 4)])
        h.process_segment(seg(0, 8, 512, write=True))  # 4 KiB = 64 lines
        assert h.dram.read_lines == 64  # write-allocate fills
        h.flush()
        assert h.dram.written_lines == 64

    def test_capacity_eviction_writebacks(self):
        h = MemoryHierarchy([Cache("L1", 64 * 64, 64)])  # 64 lines FA-ish
        h.process_segment(seg(0, 8, 8 * 128, write=True))  # 128 lines dirty
        assert h.dram.written_lines >= 64  # evicted dirty lines

    def test_two_level_inclusion_of_traffic(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4), Cache("L2", 32 * 1024, 8)])
        h.process_segment(seg(0, 8, 4096))  # 512 lines: miss L1+L2
        h.process_segment(seg(0, 8, 4096))  # fits L2 (512 lines = 32 KiB)
        snap = snapshot(h)
        assert snap.level("L2").misses == 512  # only the first pass
        assert snap.level("L2").hits >= 400  # second pass mostly L2 hits
        assert snap.dram_read_lines == 512

    def test_writeback_install_no_phantom_reads(self):
        h = MemoryHierarchy([Cache("L1", 2 * 64, 2), Cache("L2", 4096, 4)])
        # Dirty three lines mapping to the same L1 set; evictions land in L2.
        for line in range(3):
            h.process_segment(seg(line * 2 * 64, 0, 1, write=True, esize=8))
        assert h.dram.read_lines == 3  # only the demand fills

    def test_negative_stride_segment(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4)])
        h.process_segment(seg(4088, -8, 512))  # bytes 8..4095, backward
        assert h.caches[0].stats.misses == 64

    def test_element_straddling_lines(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4)])
        h.process_segment(seg(60, 0, 1, esize=8))  # crosses line 0/1
        assert h.caches[0].stats.accesses == 2

    def test_prefetch_hits_classified(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4)], prefetch=U74_PREFETCH)
        h.process_segment(seg(0, 8, 4096))
        snap = snapshot(h)
        assert 0 < snap.level("L1").prefetch_hits <= snap.level("L1").misses

    def test_snapshot_delta(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4)])
        h.process_segment(seg(0, 8, 512))
        first = snapshot(h)
        h.process_segment(seg(32768, 8, 512))
        delta = snapshot(h) - first
        assert delta.level("L1").misses == 64

    def test_reset(self):
        h = MemoryHierarchy([Cache("L1", 4096, 4)], prefetch=U74_PREFETCH)
        h.process_segment(seg(0, 8, 512))
        h.reset()
        snap = snapshot(h)
        assert snap.dram_read_lines == 0 and snap.level("L1").accesses == 0

    def test_requires_a_cache(self):
        with pytest.raises(SimulationError):
            MemoryHierarchy([])

    def test_line_size_consistency_checked(self):
        with pytest.raises(SimulationError):
            MemoryHierarchy([Cache("L1", 4096, 4, line_size=32)], line_size=64)
