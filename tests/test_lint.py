"""The lint framework: checkers, waivers, renderers, and the strict gate."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint import (
    CODES,
    Diagnostic,
    FIGURE_WAIVERS,
    Severity,
    lint_program,
    render_sarif,
    render_text,
    strict_failures,
)
from repro.devices import get_device
from repro.errors import AnalysisError, TransformError
from repro.ir import DType, LoopBuilder


def _codes(report):
    return sorted(d.code for d in report.diagnostics)


# ---------------------------------------------------------------------------
# Checkers on the paper's kernels (expectations validated by simulation)
# ---------------------------------------------------------------------------

class TestCheckersOnKernels:
    def test_naive_transpose_flags_stride(self):
        from repro.kernels import transpose

        report = lint_program(transpose.naive(64), device=get_device("xeon_4310t"))
        assert _codes(report) == ["RPR003", "RPR003"]  # strided read + write
        assert all(d.severity == Severity.WARNING for d in report.diagnostics)
        assert strict_failures(report)

    def test_parallel_transpose_adds_false_sharing(self):
        from repro.kernels import transpose

        report = lint_program(transpose.parallel(64), device=get_device("xeon_4310t"))
        assert _codes(report) == ["RPR002", "RPR003", "RPR003"]
        rpr002 = next(d for d in report.diagnostics if d.code == "RPR002")
        # The column write re-touches a boundary line per inner iteration.
        assert rpr002.severity == Severity.WARNING

    def test_blocked_transpose_variants_clean(self):
        from repro.kernels import transpose

        device = get_device("xeon_4310t")
        for variant in ("Blocking", "Manual_blocking", "Dynamic"):
            report = lint_program(
                transpose.build(variant, 512, block=16), device=device
            )
            # At this size the enumeration cross-check is over budget, so a
            # skipped-oracle note (RPR006) may appear; nothing else, and
            # nothing that fails the gate.
            assert all(d.code == "RPR006" for d in report.diagnostics), variant
            assert not strict_failures(report), variant

    def test_oversized_tile_flags_tile_fit_and_stride(self):
        from repro.kernels import transpose

        report = lint_program(
            transpose.build("Blocking", 512, block=128),
            device=get_device("mango_pi_d1"),
        )
        codes = set(_codes(report))
        assert "RPR004" in codes  # 128x128 f64 tile pair > 32 KiB L1
        assert "RPR003" in codes  # and so the strided walk is not resident

    def test_stream_false_sharing_is_note_only(self):
        from repro.kernels import stream

        program = stream.build("triad", 4096, parallel=True)
        report = lint_program(program, device=get_device("xeon_4310t"))
        assert all(d.severity == Severity.NOTE for d in report.diagnostics)
        assert not strict_failures(report)

    def test_scan_parallel_flags_race_and_uncertified(self):
        from repro.kernels import scan

        report = lint_program(scan.parallel(256))
        codes = set(_codes(report))
        assert {"RPR001", "RPR005"} <= codes
        race = next(d for d in report.diagnostics if d.code == "RPR001")
        assert race.severity == Severity.ERROR
        assert "distance 1" in race.message

    def test_blur_naive_stride_is_note(self):
        from repro.kernels import blur

        report = lint_program(blur.build("Naive", 32, 24, 5), device=get_device("xeon_4310t"))
        assert all(d.code == "RPR003" for d in report.diagnostics)
        assert all(d.severity == Severity.NOTE for d in report.diagnostics)

    def test_figure_variants_clean_or_waived(self):
        from repro.experiments.config import paper_variants
        from repro.kernels import blur, transpose

        device = get_device("xeon_4310t")
        for kernel, variant in paper_variants():
            if kernel == "transpose":
                program = transpose.build(variant, 256, block=16)
            else:
                program = blur.build(variant, 48, 40, 7)
            waivers = FIGURE_WAIVERS.get((kernel, variant), {})
            report = lint_program(
                program, device=device, waivers=waivers, kernel=kernel, variant=variant
            )
            assert not strict_failures(report), (kernel, variant, _codes(report))


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------

class TestEngine:
    def test_waiver_moves_diagnostic_aside(self):
        from repro.kernels import transpose

        report = lint_program(
            transpose.naive(64),
            device=get_device("xeon_4310t"),
            waivers={"RPR003": "baseline by design"},
        )
        assert report.diagnostics == []
        assert [d.code for d, _ in report.waived] == ["RPR003", "RPR003"]
        assert all(reason == "baseline by design" for _, reason in report.waived)
        assert not strict_failures(report)

    def test_unknown_checker_rejected(self):
        from repro.kernels import transpose

        with pytest.raises(AnalysisError, match="unknown lint checker"):
            lint_program(transpose.naive(8), checkers=("race", "nosuch"))

    def test_strict_threshold(self):
        from repro.kernels import blur

        report = lint_program(blur.build("Naive", 32, 24, 5), device=get_device("xeon_4310t"))
        assert not strict_failures(report)  # notes pass
        assert strict_failures(report, threshold=Severity.NOTE) == report.diagnostics

    def test_report_meta_and_text(self):
        from repro.kernels import transpose

        report = lint_program(
            transpose.build("Blocking", 256, block=16),
            device=get_device("xeon_4310t"),
            kernel="transpose",
            variant="Blocking",
        )
        assert report.meta["kernel"] == "transpose"
        assert "clean" in report.to_text()

    def test_uncertified_meta_survives_later_passes(self):
        # The RPR005 record must ride through subsequent transforms.
        from repro.kernels import scan
        from repro.transforms import Serialize

        program = Serialize("i").run(scan.parallel(64))
        assert program.meta.get("uncertified_transforms")
        report = lint_program(program, checkers=("uncertified-transform",))
        assert _codes(report) == ["RPR005"]

    def test_skipped_oracle_surfaces_as_rpr006(self):
        # A tiny enumeration budget forces the cross-check to be skipped;
        # the certification still passes (symbolic proof stands alone) and
        # the skip becomes a note, not an error.
        from repro.kernels import transpose
        from repro.transforms import Parallelize

        program = Parallelize("i", certify_budget=10).run(transpose.naive(32))
        assert program.meta.get("oracle_skipped")
        report = lint_program(program, checkers=("analysis-quality",))
        assert _codes(report) == ["RPR006"]
        assert report.diagnostics[0].severity == Severity.NOTE
        assert not strict_failures(report)

    def test_paper_kernels_have_no_analysis_quality_notes(self):
        # The paper's kernels are all unit-coefficient affine: the solver
        # is exact on them and their certifications fit the budget.
        from repro.kernels import blur, transpose

        for program in (transpose.parallel(32), blur.parallel(16, 12, 3)):
            report = lint_program(program, checkers=("analysis-quality",))
            assert report.diagnostics == []

    def test_certified_transform_records_method(self):
        from repro.kernels import transpose

        meta = transpose.parallel(16).meta
        entries = meta.get("certified_transforms", ())
        assert any(
            e["transform"] == "Parallelize" and e["method"] == "symbolic" for e in entries
        )


class TestPassManagerStrict:
    def test_strict_mode_blocks_uncertified_parallelize(self):
        from repro.kernels import scan
        from repro.transforms import Parallelize
        from repro.transforms.base import PassManager

        manager = PassManager([Parallelize("i", certify=False)], strict=True)
        with pytest.raises(TransformError, match="strict lint failed"):
            manager.run(scan.naive(64))

    def test_strict_mode_passes_legal_pipeline(self):
        from repro.kernels import transpose
        from repro.transforms import Parallelize, TileTriangular2D
        from repro.transforms.base import PassManager

        manager = PassManager(
            [TileTriangular2D("i", "j", 4), Parallelize("i_blk")], strict=True
        )
        manager.run(transpose.naive(16))

    def test_default_mode_still_allows_uncertified(self):
        from repro.kernels import scan
        from repro.transforms import Parallelize
        from repro.transforms.base import PassManager

        out = PassManager([Parallelize("i", certify=False)]).run(scan.naive(64))
        assert out.meta.get("uncertified_transforms")


# ---------------------------------------------------------------------------
# Diagnostics and renderers
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_codes_table_is_complete(self):
        assert set(CODES) == {f"RPR00{i}" for i in range(1, 10)}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="RPR999", message="nope", severity=Severity.NOTE, program="p")

    def test_render_is_compiler_style(self):
        diag = Diagnostic(
            code="RPR003",
            message="strided walk",
            severity=Severity.WARNING,
            program="k",
            loop_path=("i", "j"),
            hint="interchange",
        )
        text = diag.render()
        assert "k [i>j]" in text and "RPR003" in text and "fix: interchange" in text

    def test_render_text_orders_by_severity(self):
        note = Diagnostic(code="RPR006", message="n", severity=Severity.NOTE, program="p")
        err = Diagnostic(code="RPR001", message="e", severity=Severity.ERROR, program="p")
        text = render_text([note, err])
        assert text.index("RPR001") < text.index("RPR006")

    def test_json_roundtrip(self):
        from repro.kernels import scan

        report = lint_program(scan.parallel(64), kernel="scan", variant="Parallel")
        doc = json.loads(report.to_json())
        assert doc["kernel"] == "scan"
        assert doc["counts"]["error"] == 1
        codes = [d["code"] for d in doc["diagnostics"]]
        assert "RPR001" in codes and "RPR005" in codes

    def test_sarif_shape(self):
        from repro.kernels import transpose

        report = lint_program(transpose.naive(32), device=get_device("xeon_4310t"))
        doc = json.loads(report.to_sarif())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"RPR003"}
        assert all(r["level"] == "warning" for r in run["results"])

    def test_sarif_empty_is_valid(self):
        doc = json.loads(render_sarif([]))
        assert doc["runs"][0]["results"] == []


def test_race_checker_only_fires_on_parallel_loops():
    b = LoopBuilder("seq_scan")
    a = b.array("a", DType.F64, (64,))
    with b.loop("i", 1, 64) as i:
        b.store(a, i, a[i - 1] + 1.0)
    report = lint_program(b.build(), checkers=("race",))
    assert report.diagnostics == []
