"""The ``repro perf`` CLI: stat / annotate / diff, exports, baselines.

The transpose cells run at the perf default scale (real cache sizes) so
the 3C story matches Section 4.2: the Naive column walk aliases cache
sets and its misses classify as conflict; Blocking collapses them.
"""

import json

import pytest

from repro import cli

DIFF_ARGS = ["perf", "diff", "transpose", "Naive", "Blocking", "--device", "visionfive"]


def test_stat_renders_3c_breakdown(capsys):
    assert cli.main(["perf", "stat", "transpose", "Naive", "--device", "visionfive"]) == 0
    out = capsys.readouterr().out
    assert "Perf stat — transpose/Naive on visionfive_jh7100" in out
    assert "compulsory" in out and "conflict" in out
    assert "L1.misses" in out and "conflict_sets" in out
    assert "prefetch.lines" in out


def test_diff_shows_conflict_collapse(capsys):
    """The ISSUE acceptance scenario: conflict misses dominate Naive and
    drop by an order of magnitude under Blocking."""
    assert cli.main(DIFF_ARGS) == 0
    out = capsys.readouterr().out
    assert "Perf diff — transpose" in out
    assert "conflict misses:" in out
    # Parse the closing summary line for the actual collapse.
    summary = next(line for line in out.splitlines() if line.startswith("conflict misses:"))
    naive_pct = float(summary.split("(")[1].split("%")[0])
    blocking_pct = float(summary.split("(")[2].split("%")[0])
    assert naive_pct > 50.0          # conflict-dominated baseline
    assert blocking_pct < naive_pct / 2


def test_annotate_joins_statements(capsys):
    args = ["perf", "annotate", "transpose", "Naive", "--device", "visionfive"]
    assert cli.main(args) == 0
    out = capsys.readouterr().out
    assert "Annotate — transpose/Naive" in out
    assert "mat[i][j] = mat[j][i];" in out
    assert "| source" in out


def test_json_output_and_3c_partition(capsys):
    assert cli.main(DIFF_ARGS + ["--json"]) == 0
    cells = json.loads(capsys.readouterr().out)
    assert [c["variant"] for c in cells] == ["Naive", "Blocking"]
    for cell in cells:
        for level in cell["levels"]:
            assert (
                level["compulsory"] + level["capacity"] + level["conflict"]
                == level["misses"]
            )


def test_jobs_determinism(capsys):
    """--jobs 2 must produce byte-identical output to the serial run."""
    args = DIFF_ARGS + ["--json"]
    assert cli.main(args + ["--jobs", "1"]) == 0
    serial = capsys.readouterr().out
    assert cli.main(args + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_openmetrics_export(tmp_path, capsys):
    om = tmp_path / "perf.om"
    args = ["perf", "stat", "transpose", "Naive", "--device", "mango_pi_d1",
            "--openmetrics", str(om)]
    assert cli.main(args) == 0
    capsys.readouterr()
    text = om.read_text()
    assert text.endswith("# EOF\n")
    assert "# TYPE repro_cache_misses_3c_total counter" in text
    assert (
        'repro_cache_misses_3c_total{kernel="transpose",variant="Naive",'
        'device="mango_pi_d1",level="L1",class="conflict"}' in text
    )


def test_save_baseline_then_check_and_drift(tmp_path, capsys):
    baseline = str(tmp_path / "perf_baseline.json")
    args = ["perf", "stat", "transpose", "Naive", "--device", "mango_pi_d1",
            "--baseline", baseline]
    assert cli.main(args + ["--save-baseline"]) == 0
    assert cli.main(args + ["--check"]) == 0
    capsys.readouterr()

    data = json.loads(open(baseline).read())
    entry = next(iter(data["entries"].values()))
    entry["counters"]["pmu.L1.conflict"] += 1
    open(baseline, "w").write(json.dumps(data))
    assert cli.main(args + ["--check"]) == 1


def test_unknown_device_prefix_errors(capsys):
    args = ["perf", "stat", "transpose", "Naive", "--device", "nonexistent"]
    assert cli.main(args) == 2


def test_lint_measure_cites_counts(capsys):
    args = ["lint", "transpose", "Naive", "--device", "visionfive_jh7100", "--measure"]
    assert cli.main(args) == 0
    out = capsys.readouterr().out
    assert "measured on visionfive_jh7100" in out
    assert "conflict misses" in out


def test_runner_perf_json_export(tmp_path, monkeypatch):
    """The runner records PMU counters and the export collects them by figure."""
    from repro.devices import get_device
    from repro.experiments import runner as runner_mod
    from repro.experiments.export import export_figure_perf_json
    from repro.kernels import transpose

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
    runner_mod.reset_default_runner()
    try:
        r = runner_mod.default_runner()
        rec = r.run(("fig2", "Naive", 64), lambda: transpose.naive(64),
                    get_device("mango_pi_d1"))
        assert rec.counters["pmu.L1.compulsory"] > 0
        path = export_figure_perf_json("fig2", str(tmp_path))
        data = json.loads(open(path).read())
        (key,) = data
        assert data[key] == rec.counters
    finally:
        runner_mod.reset_default_runner()


def test_runner_pmu_gate_off(tmp_path, monkeypatch):
    from repro.devices import get_device
    from repro.experiments import runner as runner_mod
    from repro.kernels import transpose

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache.json"))
    monkeypatch.setenv("REPRO_PMU", "off")
    runner_mod.reset_default_runner()
    try:
        rec = runner_mod.default_runner().run(
            ("fig2", "Naive", 64), lambda: transpose.naive(64),
            get_device("mango_pi_d1"))
        assert rec.counters == {}
    finally:
        runner_mod.reset_default_runner()


def test_status_dashes_quantiles_below_three_runs(tmp_path, monkeypatch, capsys):
    from repro.experiments.report import DASH
    from repro.runtime.journal import Journal, JournalEntry, default_journal_path

    cache_path = str(tmp_path / "cache.json")
    journal = Journal(default_journal_path(cache_path))
    for figure, runs in (("fig2", 2), ("fig6", 3)):
        for i in range(runs):
            journal.append(JournalEntry(
                ts=0.0, key=f'v2:["{figure}","Naive",{i}]', outcome="completed",
                duration_s=1.0 + i, attempts=1,
            ))
    monkeypatch.setenv("REPRO_CACHE", cache_path)
    assert cli.main(["status"]) == 0
    out = capsys.readouterr().out
    fig2_row = next(line for line in out.splitlines() if line.startswith("fig2"))
    fig6_row = next(line for line in out.splitlines() if line.startswith("fig6"))
    assert DASH in fig2_row           # 2 samples: quantiles suppressed
    assert DASH not in fig6_row       # 3 samples: quantiles printed
    assert "2.000" in fig6_row        # p50 of 1.0/2.0/3.0


def test_measured_roofline_in_profile(capsys):
    args = ["profile", "transpose", "Naive", "mango_pi_d1", "--n", "64", "--json"]
    assert cli.main(args) == 0
    data = json.loads(capsys.readouterr().out)
    roofline = data["roofline"]
    assert roofline["measured_traffic_bytes"]["dram"] == data["counters"]["dram.bytes"]
    assert "measured_intensity" in roofline
    assert "measured_attainable_gflops" in roofline
    assert data["counters"]["pmu.L1.conflict"] >= 0
