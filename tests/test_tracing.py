"""Distributed tracing: context propagation, span trees, passivity.

The trace-context layer (:mod:`repro.profiling.tracer`) is what turns
the flat span log into one connected tree per serve request, so these
tests pin the contracts the serve tier depends on: strict W3C
``traceparent`` parsing, parent links under an activated context,
cross-process tree assembly, pid-reuse-safe worker tracks, and — the
paper-repro invariant — tracing never changes figure results.
"""

from __future__ import annotations

import pytest

from repro.profiling import tracer
from repro.profiling.tracer import (
    TRACE_PID,
    TraceContext,
    Tracer,
    assemble_tree,
    render_span_tree,
)

_TRACE = "ab" * 16
_SPAN = "cd" * 8
VALID = f"00-{_TRACE}-{_SPAN}-01"


# -- traceparent parsing -------------------------------------------------------


class TestTraceparentParsing:
    def test_valid_header_roundtrip(self):
        ctx = TraceContext.parse(VALID)
        assert ctx is not None
        assert ctx.trace_id == _TRACE
        assert ctx.span_id == _SPAN
        assert ctx.sampled
        assert ctx.to_header() == VALID

    def test_sampled_flag_is_bit_zero(self):
        assert not TraceContext.parse(f"00-{_TRACE}-{_SPAN}-00").sampled
        # Any flags byte with bit 0 set means sampled.
        assert TraceContext.parse(f"00-{_TRACE}-{_SPAN}-03").sampled

    def test_future_version_tolerated_in_exact_shape(self):
        ctx = TraceContext.parse(f"01-{_TRACE}-{_SPAN}-01")
        assert ctx is not None and ctx.trace_id == _TRACE

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            42,
            "garbage",
            f"00-{_TRACE}-{_SPAN}",            # three fields
            f"00-{_TRACE}-{_SPAN}-01-extra",   # five fields
            f"0-{_TRACE}-{_SPAN}-01",          # short version
            f"zz-{_TRACE}-{_SPAN}-01",         # non-hex version
            f"ff-{_TRACE}-{_SPAN}-01",         # reserved version
            f"00-{_TRACE.upper()}-{_SPAN}-01",  # uppercase hex rejected
            f"00-{_TRACE[:-2]}-{_SPAN}-01",    # short trace id
            f"00-{'0' * 32}-{_SPAN}-01",       # all-zero trace id
            f"00-{_TRACE}-{_SPAN[:-2]}-01",    # short span id
            f"00-{_TRACE}-{'0' * 16}-01",      # all-zero span id
            f"00-{_TRACE}-{_SPAN}-1",          # short flags
            f"00-{_TRACE}-{_SPAN}-zz",         # non-hex flags
        ],
    )
    def test_malformed_headers_rejected(self, header):
        assert TraceContext.parse(header) is None

    def test_mint_and_child_share_trace(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
        assert TraceContext.parse(ctx.to_header()) == ctx
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id


# -- activation and parent links -----------------------------------------------


class TestActivationAndParentLinks:
    def test_no_context_records_no_ids(self):
        with tracer.install() as t:
            with t.span("a"):
                pass
        span = t.spans[0]
        assert span.trace_id == span.span_id == span.parent_id == ""

    def test_unsampled_context_propagates_but_records_no_ids(self):
        ctx = TraceContext.mint(sampled=False)
        with tracer.install() as t, tracer.activate(ctx):
            header = tracer.current_traceparent()
            assert header is not None and header.endswith("-00")
            with t.span("a"):
                pass
        assert t.spans[0].span_id == ""

    def test_nested_spans_link_to_enclosing_and_context(self):
        ctx = TraceContext.mint()
        with tracer.install() as t, tracer.activate(ctx):
            with t.span("outer"):
                with t.span("inner"):
                    pass
        inner, outer = t.spans  # spans append at close: inner first
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.trace_id == inner.trace_id == ctx.trace_id
        assert outer.parent_id == ctx.span_id
        assert inner.parent_id == outer.span_id

    def test_current_context_tracks_innermost_open_span(self):
        ctx = TraceContext.mint()
        with tracer.install() as t, tracer.activate(ctx):
            assert tracer.current_context().span_id == ctx.span_id
            with t.span("outer"):
                open_span = tracer.current_context().span_id
                assert open_span != ctx.span_id
        assert t.spans[0].span_id == open_span
        assert tracer.current_traceparent() is None  # deactivated

    def test_activation_nests_and_restores(self):
        first, second = TraceContext.mint(), TraceContext.mint()
        with tracer.activate(first):
            with tracer.activate(second):
                assert tracer.active_context() is second
            assert tracer.active_context() is first
        assert tracer.active_context() is None

    def test_activate_none_is_a_noop(self):
        with tracer.activate(None) as ctx:
            assert ctx is None
            assert tracer.active_context() is None


# -- tree assembly -------------------------------------------------------------


def _span(span_id, parent_id="", name="s", start=0.0, pid=TRACE_PID):
    return {
        "name": name, "cat": "", "start_us": start, "dur_us": 1.0,
        "tid": 0, "depth": 0, "seq": int(start), "args": {}, "pid": pid,
        "ph": "X", "trace_id": _TRACE, "span_id": span_id,
        "parent_id": parent_id,
    }


class TestAssembleTree:
    def test_single_connected_root(self):
        roots = assemble_tree([
            _span("aa" * 8, name="root", start=0),
            _span("bb" * 8, parent_id="aa" * 8, name="late", start=20),
            _span("cc" * 8, parent_id="aa" * 8, name="early", start=10),
            _span("dd" * 8, parent_id="cc" * 8, name="leaf", start=11),
        ])
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "root"
        # Children come back in start order, not insertion order.
        assert [c["name"] for c in root["children"]] == ["early", "late"]
        assert root["children"][0]["children"][0]["name"] == "leaf"

    def test_remote_parent_becomes_root(self):
        # The serve root parents under the HTTP client's span, which is
        # not in the server's span set — it must still surface as a root.
        roots = assemble_tree([
            _span("aa" * 8, parent_id="ee" * 8, name="serve.job"),
            _span("bb" * 8, parent_id="aa" * 8, name="child"),
        ])
        assert len(roots) == 1
        assert roots[0]["name"] == "serve.job"

    def test_spans_without_ids_are_ignored(self):
        naked = _span("", name="untraceable")
        assert assemble_tree([naked]) == []

    def test_render_marks_worker_pids(self):
        roots = assemble_tree([
            _span("aa" * 8, name="serve.job"),
            _span("bb" * 8, parent_id="aa" * 8, name="simulate", pid=4242),
        ])
        text = render_span_tree(roots)
        assert "serve.job" in text
        assert "(pid 4242)" in text


# -- worker-track bookkeeping (pid reuse across respawns) ----------------------


class TestAbsorbEpochTracks:
    def _raw(self):
        return {"name": "w", "start_us": 0.0, "dur_us": 1.0, "tid": 0,
                "depth": 0, "seq": 0, "ph": "X"}

    def test_respawned_worker_pid_gets_fresh_track(self):
        t = Tracer()
        t.absorb([self._raw()], pid=4242, epoch=1)
        t.absorb([self._raw()], pid=4242, epoch=2)  # OS reused the pid
        t.absorb([self._raw()], pid=4242, epoch=1)  # first incarnation again
        pids = [s.pid for s in t.spans]
        assert pids[0] == 4242
        assert pids[1] not in (TRACE_PID, 4242)  # its own synthetic track
        assert pids[2] == 4242

    def test_distinct_worker_pids_keep_real_pids(self):
        t = Tracer()
        t.absorb([self._raw()], pid=100, epoch=7)
        t.absorb([self._raw()], pid=200, epoch=9)
        assert [s.pid for s in t.spans] == [100, 200]

    def test_absorb_preserves_trace_ids(self):
        raw = dict(self._raw(), trace_id=_TRACE, span_id=_SPAN,
                   parent_id="ee" * 8)
        t = Tracer()
        t.absorb([raw], pid=77, epoch=1)
        span = t.spans[0]
        assert (span.trace_id, span.span_id, span.parent_id) == \
            (_TRACE, _SPAN, "ee" * 8)

    def test_chrome_events_expose_ids_in_args(self):
        ctx = TraceContext.mint()
        with tracer.install() as t:
            with tracer.activate(ctx):
                with t.span("traced"):
                    pass
            with t.span("plain"):
                pass
        events = {e["name"]: e for e in t.chrome_events()}
        assert events["traced"]["args"]["trace_id"] == ctx.trace_id
        assert events["traced"]["args"]["parent_id"] == ctx.span_id
        assert "args" not in events["plain"]


# -- passivity: tracing must never change results ------------------------------


class TestTracingPassivity:
    def test_figure_json_byte_identical_with_tracing(self, tmp_path, monkeypatch):
        from repro.experiments import CACHE_SCALE, fig1
        from repro.experiments.export import export_figure_json

        monkeypatch.setenv("REPRO_CACHE", "off")
        monkeypatch.setenv("REPRO_PMU", "off")
        scale = CACHE_SCALE * 4  # small caches keep both runs fast

        fig1._measure_level.cache_clear()
        bare = fig1.run(scale=scale)
        fig1._measure_level.cache_clear()  # force the traced run to re-measure
        ctx = TraceContext.mint()
        with tracer.install() as t, tracer.activate(ctx):
            traced = fig1.run(scale=scale)
        # The traced run really was observed end-to-end…
        assert t.spans
        assert any(s.trace_id == ctx.trace_id for s in t.spans)
        # …and observation changed nothing: canonical JSON is byte-equal.
        bare_path = export_figure_json("fig1", str(tmp_path / "bare"),
                                       result=bare)
        traced_path = export_figure_json("fig1", str(tmp_path / "traced"),
                                         result=traced)
        with open(bare_path, "rb") as fh:
            bare_bytes = fh.read()
        with open(traced_path, "rb") as fh:
            traced_bytes = fh.read()
        assert bare_bytes == traced_bytes
