"""Tests for the compiler passes."""

import numpy as np
import pytest

from repro.analysis import certify_interchange
from repro.errors import TransformError, ValidationError
from repro.exec import run_program
from repro.ir import DType, LoopBuilder, find_loop, loop_nest_vars, loops_in, validate_program
from repro.transforms import (
    AutoVectorize,
    Interchange,
    Parallelize,
    PassManager,
    Serialize,
    StripMine,
    TileTriangular2D,
    Unroll,
    Vectorize,
    apply_passes,
    vectorizable,
)

from tests.conftest import transpose_program, triad_program


def _copy2d(h, w):
    b = LoopBuilder("copy2d")
    a = b.array("a", DType.F64, (h, w))
    out = b.array("out", DType.F64, (h, w))
    with b.loop("i", 0, h) as i:
        with b.loop("j", 0, w) as j:
            b.store(out, (i, j), a[i, j] * 2.0)
    return b.build()


class TestInterchange:
    def test_swaps_loop_order(self):
        program = apply_passes(_copy2d(6, 8), [Interchange("i", "j")])
        assert loop_nest_vars(program.body) == ("j", "i")

    def test_preserves_semantics(self, rng):
        original = _copy2d(6, 8)
        swapped = apply_passes(original, [Interchange("i", "j")])
        data = rng.random((6, 8))
        assert np.array_equal(
            run_program(original, {"a": data})["out"],
            run_program(swapped, {"a": data})["out"],
        )
        certify_interchange(original, swapped)

    def test_triangular_rejected(self):
        with pytest.raises(TransformError, match="depend"):
            apply_passes(transpose_program(8), [Interchange("i", "j")])

    def test_missing_pair_rejected(self):
        with pytest.raises(TransformError):
            apply_passes(_copy2d(4, 4), [Interchange("j", "zz")])

    def test_not_perfectly_nested_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4, 4))
        with b.loop("i", 0, 4) as i:
            b.local("t", a[i, 0])
            with b.loop("j", 0, 4) as j:
                b.store(a, (i, j), b.ref("t"))
        with pytest.raises(TransformError):
            apply_passes(b.build(), [Interchange("i", "j")])


class TestStripMine:
    @pytest.mark.parametrize("n,factor", [(32, 4), (37, 8), (8, 16)])
    def test_same_results(self, n, factor, rng):
        original = triad_program(n)
        mined = apply_passes(original, [StripMine("i", factor)])
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        assert np.array_equal(
            run_program(original, inputs)["a"], run_program(mined, inputs)["a"]
        )

    def test_structure(self):
        mined = apply_passes(triad_program(32), [StripMine("i", 8)])
        vars_ = [loop.var for loop in loops_in(mined.body)]
        assert vars_ == ["i_blk", "i"]

    def test_factor_validation(self):
        with pytest.raises(TransformError):
            StripMine("i", 1)

    def test_missing_loop(self):
        with pytest.raises(TransformError):
            apply_passes(triad_program(8), [StripMine("zz", 4)])

    def test_parallel_flag_moves_to_block_loop(self):
        program = apply_passes(
            triad_program(32), [Parallelize("i"), StripMine("i", 8)]
        )
        loops = {loop.var: loop for loop in loops_in(program.body)}
        assert loops["i_blk"].parallel
        assert not loops["i"].parallel


class TestTriangularTiling:
    @pytest.mark.parametrize("n,tile", [(16, 4), (24, 8), (30, 7), (20, 32)])
    def test_transpose_equivalence(self, n, tile, rng):
        original = transpose_program(n)
        tiled = apply_passes(original, [TileTriangular2D("i", "j", tile)])
        validate_program(tiled)
        mat = rng.random((n, n))
        assert np.array_equal(
            run_program(original, {"mat": mat})["mat"],
            run_program(tiled, {"mat": mat})["mat"],
        )
        certify_interchange(original, tiled)

    def test_rectangular_nest_tiles_too(self, rng):
        original = _copy2d(12, 12)
        tiled = apply_passes(original, [TileTriangular2D("i", "j", 4)])
        data = rng.random((12, 12))
        assert np.array_equal(
            run_program(original, {"a": data})["out"],
            run_program(tiled, {"a": data})["out"],
        )

    def test_produces_paper_listing_shape(self):
        tiled = apply_passes(transpose_program(16), [TileTriangular2D("i", "j", 4)])
        vars_ = [loop.var for loop in loops_in(tiled.body)]
        assert vars_ == ["i_blk", "j_blk", "i", "j"]
        j_loop = find_loop(tiled.body, "j")
        assert not j_loop.lo.is_plain  # max(j_blk, i+1)
        assert not j_loop.hi.is_plain  # min(j_blk+B, n)

    def test_tile_size_validation(self):
        with pytest.raises(TransformError):
            TileTriangular2D("i", "j", 1)

    def test_offset_bigger_than_tile_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (32, 32))
        with b.loop("i", 0, 16) as i:
            with b.loop("j", i + 10, 32) as j:
                b.store(a, (i, j), 1.0)
        with pytest.raises(TransformError, match="outside"):
            apply_passes(b.build(), [TileTriangular2D("i", "j", 4)])


class TestParallelize:
    def test_marks_loop(self):
        program = apply_passes(triad_program(16), [Parallelize("i", schedule="dynamic", chunk=2)])
        loop = find_loop(program.body, "i")
        assert loop.parallel and loop.schedule == "dynamic" and loop.chunk == 2

    def test_certify_option(self):
        apply_passes(triad_program(16), [Parallelize("i", certify=True)])

    def test_certify_rejects_sequential_loop(self):
        b = LoopBuilder("scan")
        a = b.array("a", DType.F64, (16,))
        with b.loop("i", 1, 16) as i:
            b.store(a, i, a[i - 1])
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            apply_passes(b.build(), [Parallelize("i", certify=True)])

    def test_serialize_undoes(self):
        program = apply_passes(
            triad_program(16), [Parallelize("i"), Serialize("i")]
        )
        assert not find_loop(program.body, "i").parallel

    def test_missing_loop(self):
        with pytest.raises(TransformError):
            apply_passes(triad_program(8), [Parallelize("zz")])


class TestUnroll:
    @pytest.mark.parametrize("n,factor", [(16, 4), (17, 4), (6, 8), (3, 2)])
    def test_same_results(self, n, factor, rng):
        original = triad_program(n)
        unrolled = apply_passes(original, [Unroll("i", factor)])
        validate_program(unrolled)
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        assert np.array_equal(
            run_program(original, inputs)["a"], run_program(unrolled, inputs)["a"]
        )

    def test_non_constant_bounds_rejected(self):
        with pytest.raises(TransformError, match="non-constant"):
            apply_passes(transpose_program(8), [Unroll("j", 2)])

    def test_factor_validation(self):
        with pytest.raises(TransformError):
            Unroll("i", 1)


class TestVectorize:
    def test_stream_is_vectorizable(self):
        program = apply_passes(triad_program(64), [Vectorize("i")])
        assert find_loop(program.body, "i").vectorized

    def test_strided_store_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (8, 8))
        with b.loop("i", 0, 8) as i:
            b.store(a, (i, 0), 1.0)  # store stride = 8 elements
        with pytest.raises(TransformError, match="stride"):
            apply_passes(b.build(), [Vectorize("i")])

    def test_cross_iteration_dependence_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (16,))
        with b.loop("i", 1, 16) as i:
            b.store(a, i, a[i - 1])
        with pytest.raises(TransformError, match="dependence"):
            apply_passes(b.build(), [Vectorize("i")])

    def test_scalar_reduction_rejected(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (16,))
        with b.loop("i", 0, 16) as i:
            b.local("s", a[i], accumulate=True)
        program = b.build()
        ok, reason = vectorizable(find_loop(program.body, "i"))
        assert not ok and "reduction" in reason

    def test_accumulate_same_element_allowed(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (16,))
        x = b.array("x", DType.F64, (16,))
        with b.loop("i", 0, 16) as i:
            b.accumulate(a, i, x[i])
        apply_passes(b.build(), [Vectorize("i")])  # no raise

    def test_auto_vectorize_skips_short_loops(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (3,))
        with b.loop("i", 0, 3) as i:
            b.store(a, i, 1.0)
        program = AutoVectorize(min_trips=8).run(b.build())
        assert not find_loop(program.body, "i").vectorized

    def test_auto_vectorize_marks_stream_not_transpose(self):
        triad = AutoVectorize().run(triad_program(64))
        assert find_loop(triad.body, "i").vectorized
        transpose = AutoVectorize().run(transpose_program(16))
        assert not find_loop(transpose.body, "j").vectorized

    def test_vectorized_interp_matches_scalar(self, rng):
        n = 40
        plain = triad_program(n)
        vectorized = apply_passes(plain, [Vectorize("i")])
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        assert np.array_equal(
            run_program(plain, inputs)["a"], run_program(vectorized, inputs)["a"]
        )


class TestPassManager:
    def test_describe(self):
        manager = PassManager([Parallelize("i"), StripMine("i", 4)])
        assert "parallelize(i" in manager.describe()

    def test_validation_catches_broken_pass(self):
        class Broken:
            name = "broken"

            def run(self, program):
                from repro.ir import Affine, Block, Store

                arr = program.arrays[0]
                bad = Store(arr, [Affine.var("ghost")] * len(arr.shape), 1.0)
                return program.with_body(Block([bad]))

            def describe(self):
                return "broken"

        with pytest.raises(ValidationError):
            PassManager([Broken()]).run(triad_program(8))

    def test_rename(self):
        program = apply_passes(triad_program(8), [], rename="renamed")
        assert program.name == "renamed"
