"""Tests for dependence analysis and legality certification."""

import pytest

from repro.analysis import (
    certify_interchange,
    certify_parallel,
    gcd_independent,
    loop_conflicts,
    may_alias,
    ziv_independent,
)
from repro.errors import AnalysisError
from repro.ir import Affine, DType, LoopBuilder

from tests.conftest import transpose_program, triad_program


class TestConservativeTests:
    def test_ziv(self):
        assert ziv_independent(Affine(3), Affine(5))
        assert not ziv_independent(Affine(3), Affine(3))
        assert not ziv_independent(Affine.var("i"), Affine(3))

    def test_gcd_disproves(self):
        # 2i and 2j+1 can never be equal.
        assert gcd_independent(Affine.var("i") * 2, Affine.var("j") * 2 + 1)

    def test_gcd_cannot_disprove_unit_coefficients(self):
        assert not gcd_independent(Affine.var("i"), Affine.var("j") + 1)

    def test_may_alias(self):
        a = [Affine.var("i") * 2]
        b = [Affine.var("j") * 2 + 1]
        assert not may_alias(a, b)
        assert may_alias([Affine.var("i")], [Affine.var("j")])


def _scan_program(n):
    """a[i] = a[i-1] + 1: a genuinely sequential loop."""
    b = LoopBuilder("scan")
    a = b.array("a", DType.F64, (n,))
    with b.loop("i", 1, n) as i:
        b.store(a, i, a[i - 1] + 1.0)
    return b.build()


class TestConcreteCertification:
    def test_triad_parallel_legal(self):
        certify_parallel(triad_program(64), "i")

    def test_scan_parallel_illegal(self):
        with pytest.raises(AnalysisError, match="carries dependences"):
            certify_parallel(_scan_program(32), "i")

    def test_scan_conflicts_identify_elements(self):
        conflicts = loop_conflicts(_scan_program(16), "i")
        assert conflicts
        assert all(c.array == "a" for c in conflicts)

    def test_transpose_outer_parallel_legal(self):
        certify_parallel(transpose_program(24), "i")

    def test_all_paper_parallel_schedules_legal(self):
        from repro.kernels import blur, transpose

        certify_parallel(transpose.parallel(16), "i")
        certify_parallel(transpose.blocking(16, block=4), "i_blk")
        certify_parallel(transpose.manual_blocking(16, block=4), "i_blk")
        certify_parallel(transpose.dynamic(16, block=4), "i_blk")
        certify_parallel(blur.parallel(12, 10, 3), "i")
        certify_parallel(blur.parallel(12, 10, 3), "i2")

    def test_budget_exceeded_enumeration_still_raises(self):
        # Direct enumeration keeps its hard budget...
        with pytest.raises(AnalysisError, match="too large"):
            loop_conflicts(triad_program(1024), "i", budget=100)

    def test_budget_exceeded_downgrades_to_skipped_oracle(self):
        # ...but certification is symbolic-first: blowing the oracle budget
        # only skips the cross-check (reported in the return value).
        note = certify_parallel(triad_program(1024), "i", budget=100)
        assert note is not None and "skipped" in note

    def test_oracle_runs_clean_within_budget(self):
        assert certify_parallel(triad_program(64), "i") is None

    def test_enumeration_oracle_none_on_overflow(self):
        from repro.analysis.dependence import enumeration_oracle

        assert enumeration_oracle(triad_program(1024), "i", budget=100) is None
        assert enumeration_oracle(triad_program(16), "i") == []

    def test_reduction_into_array_conflicts(self):
        b = LoopBuilder("reduce")
        a = b.array("a", DType.F64, (8,))
        out = b.array("out", DType.F64, (1,))
        with b.loop("i", 0, 8) as i:
            b.accumulate(out, 0, a[i])
        with pytest.raises(AnalysisError):
            certify_parallel(b.build(), "i")


class TestInterchangeCertification:
    def test_tiling_preserves_accesses(self):
        from repro.transforms import TileTriangular2D, apply_passes

        original = transpose_program(16)
        tiled = apply_passes(original, [TileTriangular2D("i", "j", 4)])
        certify_interchange(original, tiled)

    def test_strip_mine_preserves_accesses(self):
        from repro.transforms import StripMine, apply_passes

        original = triad_program(37)  # deliberately not a multiple
        mined = apply_passes(original, [StripMine("i", 8)])
        certify_interchange(original, mined)

    def test_detects_changed_access_multiset(self):
        small = triad_program(16)
        big = triad_program(17)
        with pytest.raises(AnalysisError, match="multiset"):
            certify_interchange(small, big)
