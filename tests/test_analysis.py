"""Tests for summation, op counting, footprints and reuse distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    LruStack,
    count_program,
    essential_traffic_bytes,
    footprints,
    iteration_cost,
    lines_of_segments,
    newton_sum,
    reuse_histogram,
    sum_over_range,
    working_set_bytes,
)
from repro.exec.trace import Segment
from repro.ir import DType, LoopBuilder, find_loop

from tests.conftest import transpose_program, triad_program


class TestSummation:
    def test_constant(self):
        assert sum_over_range(lambda v: 7, 0, 100) == 700

    def test_linear(self):
        assert sum_over_range(lambda v: v, 0, 1000) == sum(range(1000))

    def test_quadratic(self):
        assert sum_over_range(lambda v: v * v + 3, 5, 500) == sum(v * v + 3 for v in range(5, 500))

    def test_cubic_with_step(self):
        f = lambda v: v**3 - 2 * v
        assert sum_over_range(f, 1, 400, 3) == sum(f(v) for v in range(1, 400, 3))

    def test_empty_range(self):
        assert sum_over_range(lambda v: v, 10, 10) == 0
        assert sum_over_range(lambda v: v, 10, 5) == 0

    def test_bad_step(self):
        with pytest.raises(ValueError):
            sum_over_range(lambda v: v, 0, 10, 0)

    def test_non_polynomial_falls_back_exactly(self):
        f = lambda v: v % 7  # not polynomial
        assert sum_over_range(f, 0, 500) == sum(v % 7 for v in range(500))

    def test_newton_sum_matches_direct(self):
        samples = [2, 5, 10, 17]  # v^2 + ... degree 2 actually quadratic
        trips = 50
        # polynomial through samples at t=0..3 is t^2+t... just check against eval
        from repro.analysis.summation import _newton_eval

        assert newton_sum(samples, trips) == sum(_newton_eval(samples, t) for t in range(trips))

    @settings(max_examples=50)
    @given(
        st.lists(st.integers(-20, 20), min_size=1, max_size=4),
        st.integers(0, 60),
        st.integers(1, 60),
        st.integers(1, 4),
    )
    def test_matches_bruteforce_for_polynomials(self, poly, lo, span, step):
        def f(v):
            return sum(c * v**k for k, c in enumerate(poly))

        hi = lo + span
        assert sum_over_range(f, lo, hi, step) == sum(f(v) for v in range(lo, hi, step))


class TestOpCount:
    def test_triad_counts(self):
        n = 256
        counts = count_program(triad_program(n))
        assert counts.loads == 2 * n
        assert counts.stores == n
        assert counts.flops == 2 * n
        assert counts.fmas == n
        assert counts.bytes_loaded == 16 * n
        assert counts.bytes_stored == 8 * n

    def test_transpose_counts_triangular(self):
        n = 64
        counts = count_program(transpose_program(n))
        pairs = n * (n - 1) // 2
        assert counts.loads == 2 * pairs
        assert counts.stores == 2 * pairs

    def test_counts_scale_exactly_with_size(self):
        # Closed-form summation must agree with itself across sizes.
        c1 = count_program(transpose_program(32))
        c2 = count_program(transpose_program(64))
        pairs = lambda n: n * (n - 1) // 2
        assert c2.loads / c1.loads == pairs(64) / pairs(32)

    def test_register_scope_not_counted_as_memory(self):
        b = LoopBuilder("p")
        r = b.array("r", DType.F32, (3,), scope="register")
        a = b.array("a", DType.F32, (16,))
        with b.loop("i", 0, 16) as i:
            with b.loop("c", 0, 3) as c:
                b.accumulate(r, c, a[i])
        counts = count_program(b.build())
        assert counts.loads == 48  # the real array loads
        assert counts.stores == 0  # register accumulators are free
        assert counts.flops == 48  # but the adds still count

    def test_iteration_cost_decreases_for_triangular_rows(self):
        program = transpose_program(64)
        loop = find_loop(program.body, "i")
        assert iteration_cost(loop, 0) > iteration_cost(loop, 50)

    def test_opcounts_add_and_scale(self):
        c = count_program(triad_program(8))
        doubled = c + c
        assert doubled.loads == 2 * c.loads
        assert (c * 3).flops == 3 * c.flops


class TestFootprint:
    def test_triad_footprints(self):
        n = 128
        fp = footprints(triad_program(n))
        assert fp["a"].write_elements == n
        assert fp["a"].read_elements == 0
        assert fp["b"].read_elements == n
        assert fp["c"].read_elements == n

    def test_transpose_essential_traffic(self):
        n = 32
        assert essential_traffic_bytes(transpose_program(n)) == 2 * 8 * n * n

    def test_working_set(self):
        assert working_set_bytes(triad_program(100)) == 3 * 100 * 8

    def test_local_scratch_excluded_from_essential(self):
        from repro.kernels import transpose

        n = 32
        manual = transpose.manual_blocking(n, block=8)
        assert essential_traffic_bytes(manual) == pytest.approx(2 * 8 * n * n, rel=0.01)

    def test_blur_footprint_covers_interior(self):
        from repro.kernels import blur

        program = blur.naive(12, 10, 3)
        fp = footprints(program)
        assert fp["src"].read_elements > 0
        assert fp["dst"].write_elements > 0
        assert fp["dst"].read_elements == 0


class TestStrideAwareFootprint:
    def _strided_program(self, n, stride):
        b = LoopBuilder("strided")
        a = b.array("a", DType.F64, (stride * n,))
        out = b.array("out", DType.F64, (n,))
        with b.loop("i", 0, n) as i:
            b.store(out, i, a[stride * i])
        return b.build()

    def test_dense_box_overcounts_strided_walk(self):
        n = 64
        program = self._strided_program(n, 2)
        dense = footprints(program)["a"].read_elements
        aware = footprints(program, stride_aware=True)["a"].read_elements
        assert dense == 2 * n - 1  # the box closes the gaps
        assert aware == n          # the lattice does not

    def test_stride_aware_traffic_halves(self):
        n = 32
        program = self._strided_program(n, 4)
        dense = essential_traffic_bytes(program)
        aware = essential_traffic_bytes(program, stride_aware=True)
        assert aware < dense
        assert aware == 8 * (n + n)  # n strided reads + n unit writes

    def test_transpose_subscripts_are_dense_either_way(self):
        # Both mat[i][j] and mat[j][i] touch every element: the stride-aware
        # count must agree with the dense box, not shrink it.
        n = 32
        program = transpose_program(n)
        dense = footprints(program)["mat"]
        aware = footprints(program, stride_aware=True)["mat"]
        assert aware.read_elements == dense.read_elements
        assert aware.write_elements == dense.write_elements
        assert essential_traffic_bytes(program, stride_aware=True) == \
            essential_traffic_bytes(program)

    def test_blur_subscripts_are_dense_either_way(self):
        from repro.kernels import blur

        program = blur.naive(12, 10, 3)
        for fp_name in ("src", "dst"):
            dense = footprints(program)[fp_name]
            aware = footprints(program, stride_aware=True)[fp_name]
            assert aware.read_elements == dense.read_elements
            assert aware.write_elements == dense.write_elements

    def test_union_of_offset_lattices_falls_to_gcd(self):
        # a[4*i] union a[4*i + 2]: both live on stride-4 lattices offset by
        # 2, so the union must degrade to the stride-2 lattice.
        n = 16
        b = LoopBuilder("two_phase")
        a = b.array("a", DType.F64, (4 * n + 3,))
        out = b.array("out", DType.F64, (n,))
        with b.loop("i", 0, n) as i:
            b.store(out, i, a[4 * i] + a[4 * i + 2])
        fp = footprints(b.build(), stride_aware=True)["a"]
        lo, hi, step = fp.read_box[0]
        assert (lo, step) == (0, 2)
        assert fp.read_elements == (hi - lo) // 2 + 1


class TestReuse:
    def test_stack_distances(self):
        stack = LruStack()
        assert stack.touch(1) is None
        assert stack.touch(2) is None
        assert stack.touch(1) == 1
        assert stack.touch(1) == 0
        assert stack.touch(2) == 1

    def test_histogram_miss_ratio(self):
        # Cyclic pattern over 4 lines: distance 3 reuses.
        trace = [0, 1, 2, 3] * 10
        hist = reuse_histogram(trace)
        assert hist.cold == 4
        assert hist.miss_ratio(4) == pytest.approx(4 / 40)
        assert hist.miss_ratio(2) == 1.0  # distance 3 >= 2 always misses

    def test_histogram_mean(self):
        hist = reuse_histogram([0, 0, 0])
        assert hist.mean_distance() == 0.0

    def test_lines_of_segments(self):
        segs = [Segment(0, 0, 8, 16, False, 8)]  # 128 bytes = 2 lines
        assert list(lines_of_segments(segs)) == [0, 1]

    def test_lines_collapse_repeats(self):
        segs = [Segment(0, 0, 4, 16, False, 4)]  # 64 bytes = 1 line
        assert list(lines_of_segments(segs)) == [0]

    def test_empty_histogram(self):
        hist = reuse_histogram([])
        assert hist.total == 0 and hist.cold == 0
        assert hist.miss_ratio(0) == 0.0
        assert hist.miss_ratio(64) == 0.0
        assert hist.mean_distance() == 0.0

    def test_zero_capacity_always_misses(self):
        # capacity_lines=0: even a distance-0 re-touch has nowhere to live.
        hist = reuse_histogram([5, 5, 5, 9])
        assert hist.miss_ratio(0) == 1.0

    def test_all_cold_stream_misses_at_every_capacity(self):
        hist = reuse_histogram(range(100))
        assert hist.cold == hist.total == 100
        for capacity in (0, 1, 50, 10**9):
            assert hist.miss_ratio(capacity) == 1.0

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(0, 12), min_size=1, max_size=80),
        st.integers(0, 16),
        st.integers(0, 16),
    )
    def test_miss_ratio_monotone_in_capacity(self, trace, cap_a, cap_b):
        # A bigger fully-associative LRU cache never misses more: the
        # stack-distance inclusion property, which the histogram must
        # reproduce for every pair of capacities.
        hist = reuse_histogram(trace)
        lo, hi = sorted((cap_a, cap_b))
        assert hist.miss_ratio(hi) <= hist.miss_ratio(lo)
        assert hist.miss_ratio(0) == 1.0  # and it's pinned at the ends
        assert hist.miss_ratio(len(set(trace))) == hist.cold / hist.total
