"""Tests for the CSV figure export."""

import csv

from repro.experiments import export, fig1, fig2, fig3, fig6, fig7
from repro.metrics.speedup import speedup_row


def _read(path):
    with open(path) as fh:
        return list(csv.reader(fh))


def test_export_fig1(tmp_path):
    rows = [fig1.Fig1Row("dev", "L1", 1.0, 2.0, 3.0, 4.0)]
    path = export.export_fig1(rows, str(tmp_path))
    data = _read(path)
    assert data[0][:2] == ["device", "level"]
    assert data[1][0] == "dev" and data[1][5] == "4.0"


def test_export_fig2_includes_exclusions(tmp_path):
    panel = fig2.Fig2Panel(paper_n=16384, sim_n=1024)
    panel.rows.append(
        speedup_row(
            "dev",
            {"Naive": 1.0, "Parallel": 0.5, "Blocking": 0.25, "Manual_blocking": 0.2, "Dynamic": 0.1},
        )
    )
    panel.excluded.append("mango_pi_d1")
    path = export.export_fig2([panel], str(tmp_path))
    data = _read(path)
    assert len(data) == 1 + 5 + 1  # header + five variants + exclusion row
    assert any("EXCLUDED_OOM" in row for row in data)


def test_export_fig3(tmp_path):
    rows = [fig3.Fig3Row("dev", 8192, 0.1, "Dynamic", 0.8)]
    data = _read(export.export_fig3(rows, str(tmp_path)))
    assert data[1] == ["dev", "8192", "0.1", "Dynamic", "0.8"]


def test_export_fig6_and_fig7(tmp_path):
    result = fig6.Fig6Result(width=192, height=160, filter_size=19)
    result.rows.append(
        speedup_row(
            "dev",
            {"Naive": 1.0, "Unit-stride": 0.9, "1D_kernels": 0.5, "Memory": 0.1, "Parallel": 0.05},
        )
    )
    data6 = _read(export.export_fig6(result, str(tmp_path)))
    assert len(data6) == 1 + 5

    rows7 = [
        fig7.Fig7Row(
            "dev",
            {"1D_kernels": 0.1, "Memory": 0.2, "Parallel": 0.4},
            {"1D_kernels": 1.0, "Memory": 2.0, "Parallel": 4.0},
        )
    ]
    data7 = _read(export.export_fig7(rows7, str(tmp_path)))
    assert len(data7) == 1 + 3


def test_exporters_cover_all_figures():
    assert set(export.EXPORTERS) == {"fig1", "fig2", "fig3", "fig6", "fig7"}


def test_cli_csv_flag(tmp_path, capsys, monkeypatch):
    from repro import cli

    monkeypatch.setattr(cli.fig1, "run", lambda pool=None: [])
    monkeypatch.setattr(cli.fig1, "render", lambda rows: "TABLE")
    monkeypatch.setattr(
        "repro.experiments.export.EXPORTERS",
        {"fig1": (lambda pool=None: [], lambda rows, d: export.export_fig1(rows, d))},
    )
    assert cli.main(["fig1", "--csv-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "TABLE" in captured.out
    assert "csv written" in captured.err  # diagnostics are logged, not printed
    assert (tmp_path / "fig1_stream.csv").exists()
