"""Tests for bandwidth measurement, the utilization metric, speedups and
the roofline model."""

import pytest

from repro.devices import mango_pi_d1, visionfive_jh7100, xeon_4310t
from repro.errors import DeviceError, ReproError
from repro.kernels import transpose
from repro.metrics import (
    arithmetic_intensity,
    best_variant,
    dram_bandwidth_gbs,
    level_footprint_bytes,
    measure,
    peak_gflops,
    relative_bandwidth_utilization,
    roofline_point,
    speedup_row,
    utilization_of,
)

from tests.conftest import triad_program


class TestLevelFootprints:
    def test_l1_footprint_fits_l1(self):
        device = mango_pi_d1()
        fp = level_footprint_bytes(device, "L1")
        assert fp <= device.cache_level("L1").size_bytes

    def test_dram_footprint_exceeds_llc(self):
        device = visionfive_jh7100()
        assert level_footprint_bytes(device, "DRAM") > device.caches[-1].size_bytes

    def test_l2_footprint_exceeds_l1(self):
        device = visionfive_jh7100()
        assert level_footprint_bytes(device, "L2") >= 3 * device.cache_level("L1").size_bytes

    def test_unknown_level(self):
        with pytest.raises(DeviceError):
            level_footprint_bytes(mango_pi_d1(), "L3")


class TestBandwidthMeasurement:
    def test_l1_faster_than_dram(self):
        device = mango_pi_d1().scaled(16)
        l1 = measure(device, "L1", "copy")
        dram = measure(device, "DRAM", "copy")
        assert l1.gbs > 2 * dram.gbs

    def test_private_level_scaled_by_cores(self):
        device = visionfive_jh7100().scaled(16)
        point = measure(device, "L1", "copy")
        assert point.sequential  # measured per-core, scaled by core count

    def test_dram_bandwidth_plausible(self):
        device = mango_pi_d1().scaled(16)
        gbs = dram_bandwidth_gbs(device)
        # Achieved must be below the board's raw bandwidth.
        assert 0.2 < gbs < device.dram.bandwidth_gbs


class TestUtilizationMetric:
    def test_bounds(self):
        value = relative_bandwidth_utilization(1.0, 10.0, 5_000_000_000)
        assert value == pytest.approx(0.5)

    def test_clamped_to_one(self):
        assert relative_bandwidth_utilization(0.001, 1.0, 10**9) == 1.0

    def test_unclamped(self):
        value = relative_bandwidth_utilization(0.001, 1.0, 10**9, clamp=False)
        assert value > 1.0

    def test_program_numerator(self):
        program = triad_program(1000)
        value = relative_bandwidth_utilization(1.0, 1.0, program)
        assert value == pytest.approx(3 * 1000 * 8 / 1e9)

    def test_input_validation(self):
        with pytest.raises(ReproError):
            relative_bandwidth_utilization(0, 1.0, 100)
        with pytest.raises(ReproError):
            relative_bandwidth_utilization(1.0, 0, 100)

    def test_utilization_of_requires_traffic(self):
        from repro.simulate import simulate

        result = simulate(triad_program(1024), mango_pi_d1())
        with pytest.raises(ReproError):
            utilization_of(result, 1.0)
        assert 0 < utilization_of(result, 1.0, program=triad_program(1024)) <= 1


class TestSpeedup:
    def test_row(self):
        row = speedup_row("dev", {"Naive": 2.0, "Fast": 0.5})
        assert row.speedup("Fast") == 4.0
        assert row.naive_seconds == 2.0

    def test_best_variant(self):
        row = speedup_row("dev", {"Naive": 2.0, "A": 1.0, "B": 0.25})
        assert best_variant(row) == "B"
        assert best_variant(row, exclude=["B"]) == "A"


class TestRoofline:
    def test_stream_is_memory_bound_everywhere(self):
        program = triad_program(4096)
        for device in (xeon_4310t(), mango_pi_d1()):
            point = roofline_point(program, device, bandwidth_gbs=device.dram.bandwidth_gbs)
            assert point.memory_bound

    def test_intensity(self):
        # triad: 2 flops per 24 essential bytes.
        assert arithmetic_intensity(triad_program(512)) == pytest.approx(2 / 24)

    def test_peak_flops_vector_vs_scalar(self):
        device = xeon_4310t()
        assert peak_gflops(device, vectorized=True) == 8 * peak_gflops(device, vectorized=False)

    def test_attainable_bounded_by_peak(self):
        point = roofline_point(triad_program(512), mango_pi_d1(), bandwidth_gbs=1.0)
        assert point.attainable_gflops <= point.peak_gflops

    def test_render(self):
        from repro.metrics.roofline import render_ascii

        point = roofline_point(triad_program(512), mango_pi_d1(), bandwidth_gbs=1.0)
        text = render_ascii([point])
        assert "memory" in text
