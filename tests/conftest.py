"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import get_device
from repro.ir import DType, LoopBuilder


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(params=["xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"])
def device_key(request):
    return request.param


@pytest.fixture
def device(device_key):
    return get_device(device_key)


def triad_program(n: int, parallel: bool = False):
    """A tiny STREAM-triad-shaped program, built inline so IR tests do not
    depend on the kernels package."""
    b = LoopBuilder(f"triad_{n}")
    a = b.array("a", DType.F64, (n,))
    x = b.array("b", DType.F64, (n,))
    y = b.array("c", DType.F64, (n,))
    with b.loop("i", 0, n, parallel=parallel) as i:
        b.store(a, i, x[i] + 3.0 * y[i])
    return b.build()


def transpose_program(n: int):
    b = LoopBuilder(f"transpose_{n}")
    mat = b.array("mat", DType.F64, (n, n))
    with b.loop("i", 0, n) as i:
        with b.loop("j", i + 1, n) as j:
            t = b.local("t", mat[i, j])
            b.store(mat, (i, j), mat[j, i])
            b.store(mat, (j, i), t)
    return b.build()
