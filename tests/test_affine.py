"""Tests for affine expressions and loop bounds."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir.affine import Affine, AffineBound, AffineLowerBound, affine_max, affine_min

coeffs = st.integers(min_value=-100, max_value=100)
names = st.sampled_from(["i", "j", "k", "n"])
envs = st.fixed_dictionaries(
    {"i": st.integers(-50, 50), "j": st.integers(-50, 50), "k": st.integers(-50, 50), "n": st.integers(-50, 50)}
)


def affines():
    return st.builds(
        lambda const, terms: Affine(const, terms),
        st.integers(-100, 100),
        st.dictionaries(names, coeffs, max_size=4),
    )


class TestConstruction:
    def test_var(self):
        i = Affine.var("i")
        assert i.coefficient("i") == 1
        assert i.const == 0

    def test_zero_coefficients_dropped(self):
        assert Affine(3, {"i": 0}).terms == {}

    def test_wrap_int(self):
        assert Affine.wrap(7) == Affine(7)

    def test_wrap_passthrough(self):
        a = Affine.var("i")
        assert Affine.wrap(a) is a

    def test_wrap_rejects_junk(self):
        with pytest.raises(IRError):
            Affine.wrap("i")

    def test_equal_expressions_hash_equal(self):
        a = Affine(1, {"i": 2})
        b = Affine(1, {"i": 2, "j": 0})
        assert a == b
        assert hash(a) == hash(b)


class TestArithmetic:
    def test_add(self):
        expr = Affine.var("i") + Affine.var("j") + 5
        assert expr.evaluate({"i": 2, "j": 3}) == 10

    def test_sub(self):
        expr = Affine.var("i") - 3
        assert expr.evaluate({"i": 10}) == 7

    def test_rsub(self):
        expr = 10 - Affine.var("i")
        assert expr.evaluate({"i": 4}) == 6

    def test_mul_by_constant(self):
        expr = Affine.var("i") * 4 + 1
        assert expr.evaluate({"i": 3}) == 13

    def test_mul_two_vars_rejected(self):
        with pytest.raises(IRError):
            Affine.var("i") * Affine.var("j")

    def test_mul_by_constant_affine_ok(self):
        assert (Affine.var("i") * Affine(3)).coefficient("i") == 3

    def test_neg(self):
        assert (-Affine.var("i")).evaluate({"i": 5}) == -5

    @given(affines(), affines(), envs)
    def test_add_homomorphism(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines(), coeffs, envs)
    def test_mul_homomorphism(self, a, k, env):
        assert (a * k).evaluate(env) == a.evaluate(env) * k

    @given(affines(), affines(), envs)
    def test_sub_homomorphism(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)


class TestSubstitution:
    def test_substitute_constant(self):
        expr = Affine.var("i") * 2 + Affine.var("j")
        assert expr.substitute("i", 5) == Affine.var("j") + 10

    def test_substitute_expression(self):
        expr = Affine.var("i") * 2
        result = expr.substitute("i", Affine.var("k") + 1)
        assert result.evaluate({"k": 3}) == 8

    def test_substitute_absent_var_is_identity(self):
        expr = Affine.var("i")
        assert expr.substitute("z", 100) is expr

    @given(affines(), st.integers(-20, 20), envs)
    def test_substitute_matches_eval(self, a, value, env):
        env2 = dict(env)
        env2["i"] = value
        assert a.substitute("i", value).evaluate(env) == a.evaluate(env2)

    def test_rename(self):
        expr = Affine.var("i") + 2 * Affine.var("j")
        renamed = expr.rename({"i": "x", "j": "y"})
        assert renamed == Affine.var("x") + 2 * Affine.var("y")

    def test_rename_merges_collisions(self):
        expr = Affine.var("i") + Affine.var("j")
        assert expr.rename({"j": "i"}) == Affine.var("i") * 2

    def test_unbound_evaluate_raises(self):
        with pytest.raises(IRError):
            Affine.var("i").evaluate({})


class TestBounds:
    def test_plain_bound(self):
        bound = AffineBound.wrap(10)
        assert bound.is_plain
        assert bound.plain.const == 10

    def test_min_bound_evaluates(self):
        bound = affine_min(Affine.var("i") + 4, 10)
        assert bound.evaluate({"i": 3}) == 7
        assert bound.evaluate({"i": 100}) == 10

    def test_min_constant_simplifies(self):
        assert affine_min(3, 8).is_plain

    def test_min_equal_simplifies(self):
        assert affine_min(Affine.var("i"), Affine.var("i")).is_plain

    def test_plain_accessor_rejects_min(self):
        bound = affine_min(Affine.var("i"), 10)
        with pytest.raises(IRError):
            bound.plain

    def test_max_bound_evaluates(self):
        bound = affine_max(Affine.var("j"), Affine.var("i") + 1)
        assert bound.evaluate({"i": 5, "j": 2}) == 6
        assert bound.evaluate({"i": 0, "j": 9}) == 9

    def test_max_constant_simplifies(self):
        assert affine_max(3, 8).is_plain
        assert affine_max(3, 8).plain.const == 8

    def test_bound_substitute(self):
        bound = affine_min(Affine.var("i") + 4, Affine.var("n"))
        sub = bound.substitute("n", 100)
        assert sub.evaluate({"i": 1}) == 5

    def test_bound_variables(self):
        bound = affine_min(Affine.var("i") + 4, Affine.var("n"))
        assert bound.variables == frozenset({"i", "n"})

    def test_lower_bound_wrap(self):
        lower = AffineLowerBound.wrap(0)
        assert lower.is_plain
        assert lower.evaluate({}) == 0

    def test_empty_bound_rejected(self):
        with pytest.raises(IRError):
            AffineBound()
        with pytest.raises(IRError):
            AffineLowerBound()

    @given(affines(), affines(), envs)
    def test_min_semantics(self, a, b, env):
        assert affine_min(a, b).evaluate(env) == min(a.evaluate(env), b.evaluate(env))

    @given(affines(), affines(), envs)
    def test_max_semantics(self, a, b, env):
        assert affine_max(a, b).evaluate(env) == max(a.evaluate(env), b.evaluate(env))
