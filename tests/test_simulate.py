"""End-to-end simulation tests (program + device -> time)."""

import pytest

from repro.devices import get_device, mango_pi_d1, visionfive_jh7100, xeon_4310t
from repro.errors import OutOfMemoryError, SimulationError
from repro.kernels import stream, transpose
from repro.simulate import has_parallel_loop, simulate
from repro.transforms import AutoVectorize, Parallelize, apply_passes

from tests.conftest import triad_program


class TestBasics:
    def test_result_fields(self):
        result = simulate(triad_program(1024), mango_pi_d1())
        assert result.seconds > 0
        assert result.dram_bytes > 0
        assert result.active_cores == 1
        assert result.total_ops.flops == 2 * 1024
        assert result.level_misses("L1") > 0
        assert 0 < result.achieved_dram_gbs < 10

    def test_active_cores_default(self):
        serial = simulate(triad_program(256), visionfive_jh7100())
        parallel = simulate(
            apply_passes(triad_program(256), [Parallelize("i")]), visionfive_jh7100()
        )
        assert serial.active_cores == 1
        assert parallel.active_cores == 2

    def test_explicit_core_count(self):
        program = apply_passes(triad_program(256), [Parallelize("i")])
        result = simulate(program, xeon_4310t(), active_cores=4)
        assert result.active_cores == 4

    def test_capacity_enforced(self):
        with pytest.raises(OutOfMemoryError):
            simulate(transpose.naive(16384), mango_pi_d1())

    def test_capacity_check_can_be_disabled(self):
        # Don't actually run a 2 GiB kernel; just check a mid-size one that
        # fails the 80%-headroom rule but simulates fine.
        program = triad_program(40_000_000)  # ~0.96 GB of arrays
        with pytest.raises(OutOfMemoryError):
            simulate(program, mango_pi_d1())

    def test_bad_repetitions(self):
        with pytest.raises(SimulationError):
            simulate(triad_program(64), mango_pi_d1(), repetitions=0)
        with pytest.raises(SimulationError):
            simulate(triad_program(64), mango_pi_d1(), steady_state=True, repetitions=1)


class TestSteadyState:
    def test_warm_cache_faster(self):
        n = 512  # 12 KiB of arrays: fits L1
        device = mango_pi_d1()
        cold = simulate(stream.build("copy", n, parallel=False), device)
        warm = simulate(
            stream.build("copy", n, parallel=False),
            device,
            repetitions=3,
            steady_state=True,
        )
        assert warm.seconds < cold.seconds
        assert warm.dram_bytes < cold.dram_bytes

    def test_dram_resident_not_helped_by_repetition(self):
        n = 400_000  # ~9.6 MB: far beyond the D1's 32 KiB L1
        device = mango_pi_d1()
        cold = simulate(stream.build("copy", n, parallel=False), device)
        warm = simulate(
            stream.build("copy", n, parallel=False), device, repetitions=2, steady_state=True
        )
        assert warm.seconds == pytest.approx(cold.seconds, rel=0.15)


class TestCrossDeviceShape:
    def test_xeon_fastest_on_triad(self):
        n = 100_000
        times = {}
        for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"):
            device = get_device(key)
            program = stream.build("triad", n, parallel=device.cores > 1)
            if device.cpu.vector_bits:
                program = AutoVectorize().run(program)
            times[key] = simulate(program, device).seconds
        assert times["xeon_4310t"] < times["raspberry_pi_4"]
        assert times["raspberry_pi_4"] < times["mango_pi_d1"]
        assert times["raspberry_pi_4"] < times["visionfive_jh7100"]

    def test_flush_increases_traffic(self):
        result = simulate(triad_program(512), mango_pi_d1())
        flushed = simulate(triad_program(512), mango_pi_d1(), flush_writebacks=True)
        assert flushed.dram_bytes > result.dram_bytes

    def test_has_parallel_loop(self):
        assert not has_parallel_loop(triad_program(8))
        assert has_parallel_loop(apply_passes(triad_program(8), [Parallelize("i")]))
