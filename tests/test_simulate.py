"""End-to-end simulation tests (program + device -> time)."""

import pytest

from repro.devices import get_device, mango_pi_d1, visionfive_jh7100, xeon_4310t
from repro.errors import OutOfMemoryError, SimulationError
from repro.kernels import stream, transpose
from repro.simulate import has_parallel_loop, simulate
from repro.transforms import AutoVectorize, Parallelize, apply_passes

from tests.conftest import triad_program


class TestBasics:
    def test_result_fields(self):
        result = simulate(triad_program(1024), mango_pi_d1())
        assert result.seconds > 0
        assert result.dram_bytes > 0
        assert result.active_cores == 1
        assert result.total_ops.flops == 2 * 1024
        assert result.level_misses("L1") > 0
        assert 0 < result.achieved_dram_gbs < 10

    def test_active_cores_default(self):
        serial = simulate(triad_program(256), visionfive_jh7100())
        parallel = simulate(
            apply_passes(triad_program(256), [Parallelize("i")]), visionfive_jh7100()
        )
        assert serial.active_cores == 1
        assert parallel.active_cores == 2

    def test_explicit_core_count(self):
        program = apply_passes(triad_program(256), [Parallelize("i")])
        result = simulate(program, xeon_4310t(), active_cores=4)
        assert result.active_cores == 4

    def test_capacity_enforced(self):
        with pytest.raises(OutOfMemoryError):
            simulate(transpose.naive(16384), mango_pi_d1())

    def test_capacity_check_can_be_disabled(self):
        # Don't actually run a 2 GiB kernel; just check a mid-size one that
        # fails the 80%-headroom rule but simulates fine.
        program = triad_program(40_000_000)  # ~0.96 GB of arrays
        with pytest.raises(OutOfMemoryError):
            simulate(program, mango_pi_d1())

    def test_bad_repetitions(self):
        with pytest.raises(SimulationError):
            simulate(triad_program(64), mango_pi_d1(), repetitions=0)
        with pytest.raises(SimulationError):
            simulate(triad_program(64), mango_pi_d1(), steady_state=True, repetitions=1)


class TestSteadyState:
    def test_warm_cache_faster(self):
        n = 512  # 12 KiB of arrays: fits L1
        device = mango_pi_d1()
        cold = simulate(stream.build("copy", n, parallel=False), device)
        warm = simulate(
            stream.build("copy", n, parallel=False),
            device,
            repetitions=3,
            steady_state=True,
        )
        assert warm.seconds < cold.seconds
        assert warm.dram_bytes < cold.dram_bytes

    def test_dram_resident_not_helped_by_repetition(self):
        n = 400_000  # ~9.6 MB: far beyond the D1's 32 KiB L1
        device = mango_pi_d1()
        cold = simulate(stream.build("copy", n, parallel=False), device)
        warm = simulate(
            stream.build("copy", n, parallel=False), device, repetitions=2, steady_state=True
        )
        assert warm.seconds == pytest.approx(cold.seconds, rel=0.15)


class TestColdRepetitions:
    """Regression: cold (``steady_state=False``) multi-repetition runs must
    account *every* repetition's traffic and work, not just the last one."""

    def test_dram_resident_reps_accumulate(self):
        n = 400_000  # ~9.6 MB of arrays: DRAM-resident on the D1
        device = mango_pi_d1()
        one = simulate(triad_program(n), device)
        three = simulate(triad_program(n), device, repetitions=3, steady_state=False)
        assert three.dram_bytes == pytest.approx(3 * one.dram_bytes, rel=0.01)
        assert three.total_ops.flops == 3 * one.total_ops.flops
        assert three.seconds == pytest.approx(3 * one.seconds, rel=0.05)

    def test_cache_resident_work_still_counts_every_rep(self):
        # Later reps hit in cache, so time grows by less than 3x — but the
        # executed operations (time_run's CoreWork input) triple exactly.
        n = 512
        device = mango_pi_d1()
        one = simulate(triad_program(n), device)
        three = simulate(triad_program(n), device, repetitions=3, steady_state=False)
        assert three.total_ops.flops == 3 * one.total_ops.flops
        assert one.seconds < three.seconds < 3 * one.seconds

    def test_steady_state_measures_last_rep_only(self):
        # Warm measurement is unaffected by the cold-rep fix: any number of
        # warm-up reps converges to the same steady-state measurement.
        n = 512
        device = mango_pi_d1()
        warm2 = simulate(triad_program(n), device, repetitions=2, steady_state=True)
        warm4 = simulate(triad_program(n), device, repetitions=4, steady_state=True)
        assert warm4.seconds == pytest.approx(warm2.seconds, rel=1e-12)
        assert warm4.dram_bytes == warm2.dram_bytes
        assert warm4.total_ops.flops == warm2.total_ops.flops


class TestCrossDeviceShape:
    def test_xeon_fastest_on_triad(self):
        n = 100_000
        times = {}
        for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"):
            device = get_device(key)
            program = stream.build("triad", n, parallel=device.cores > 1)
            if device.cpu.vector_bits:
                program = AutoVectorize().run(program)
            times[key] = simulate(program, device).seconds
        assert times["xeon_4310t"] < times["raspberry_pi_4"]
        assert times["raspberry_pi_4"] < times["mango_pi_d1"]
        assert times["raspberry_pi_4"] < times["visionfive_jh7100"]

    def test_flush_increases_traffic(self):
        result = simulate(triad_program(512), mango_pi_d1())
        flushed = simulate(triad_program(512), mango_pi_d1(), flush_writebacks=True)
        assert flushed.dram_bytes > result.dram_bytes

    def test_has_parallel_loop(self):
        assert not has_parallel_loop(triad_program(8))
        assert has_parallel_loop(apply_passes(triad_program(8), [Parallelize("i")]))
