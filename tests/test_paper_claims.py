"""Golden shape tests: the paper's qualitative findings must hold in the
simulation at reduced (test-sized) workloads.

Each test cites the claim from the paper it checks.  These are the
integration tests that make the reproduction falsifiable; the full-size
versions live in benchmarks/.
"""

import pytest

from repro.experiments.config import scaled_device
from repro.kernels import blur, common, transpose
from repro.metrics.utilization import relative_bandwidth_utilization
from repro.simulate import simulate
from repro.transforms import AutoVectorize

SCALE = 16


def _run(program, device, **kwargs):
    if device.cpu.vector_bits:
        program = AutoVectorize().run(program)
    return simulate(program, device, check_capacity=False, **kwargs)


@pytest.fixture(scope="module")
def transpose_times():
    """Times of all transpose variants at a test size, per device."""
    times = {}
    for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"):
        device = scaled_device(key, SCALE)
        times[key] = {
            variant: _run(transpose.build(variant, 256, block=16), device).seconds
            for variant in transpose.VARIANT_ORDER
        }
    return times


@pytest.fixture(scope="module")
def blur_times():
    """Times of the cheap blur variants at a test size, per device."""
    h, w, F = 64, 80, 9
    times = {}
    for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"):
        device = scaled_device(key, SCALE)
        times[key] = {
            variant: _run(blur.build(variant, h, w, F), device).seconds
            for variant in ["Naive", "1D_kernels", "Memory", "Parallel"]
        }
    return times


class TestStreamClaims:
    """Section 4.1: 'RISC-V memory subsystems significantly behind ARM,
    even more behind the Xeon'; 'only L1 with rather low bandwidth on the
    Mango Pi'; 'low bandwidth of DRAM on the VisionFive'."""

    @pytest.fixture(scope="class")
    def dram(self):
        from repro.experiments import fig1

        return {
            key: fig1.dram_bandwidth(key, SCALE)
            for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100")
        }

    def test_xeon_dominates_dram(self, dram):
        assert dram["xeon_4310t"] > 5 * dram["raspberry_pi_4"]

    def test_arm_beats_riscv_dram(self, dram):
        assert dram["raspberry_pi_4"] > 2 * dram["mango_pi_d1"]
        assert dram["raspberry_pi_4"] > 2 * dram["visionfive_jh7100"]

    def test_visionfive_has_lowest_dram(self, dram):
        assert dram["visionfive_jh7100"] == min(dram.values())

    def test_mango_l1_is_slowest_l1(self):
        from repro.experiments import fig1

        l1 = {
            key: fig1._measure_level(key, "L1", SCALE).best_gbs
            for key in ("xeon_4310t", "raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100")
        }
        assert l1["mango_pi_d1"] == min(l1.values())


class TestTransposeClaims:
    """Section 4.2: optimizations developed for x86 'perform well also on
    RISC-V devices'; no parallel speedup on the single-core Mango Pi;
    dynamic scheduling fixes the triangular imbalance."""

    def test_blocking_family_speeds_up_every_device(self, transpose_times):
        for key, times in transpose_times.items():
            best = min(times["Blocking"], times["Manual_blocking"], times["Dynamic"])
            assert best < times["Naive"] / 1.15, key

    def test_manual_blocking_beats_blocking(self, transpose_times):
        for key, times in transpose_times.items():
            assert times["Manual_blocking"] <= times["Blocking"] * 1.05, key

    def test_mango_pi_gains_nothing_from_parallel(self, transpose_times):
        times = transpose_times["mango_pi_d1"]
        assert times["Parallel"] == pytest.approx(times["Naive"], rel=0.02)

    def test_multicore_devices_gain_from_parallel(self, transpose_times):
        for key in ("xeon_4310t", "raspberry_pi_4"):
            assert transpose_times[key]["Parallel"] < transpose_times[key]["Naive"], key

    def test_dynamic_at_least_as_good_as_static(self, transpose_times):
        for key in ("xeon_4310t", "raspberry_pi_4", "visionfive_jh7100"):
            times = transpose_times[key]
            assert times["Dynamic"] <= times["Manual_blocking"] * 1.02, key

    def test_riscv_naive_times_similar(self, transpose_times):
        """'their computation time is almost identical' (D1 vs JH7100)."""
        d1 = transpose_times["mango_pi_d1"]["Naive"]
        jh = transpose_times["visionfive_jh7100"]["Naive"]
        assert 0.3 < d1 / jh < 3.0

    def test_xeon_fastest_absolute(self, transpose_times):
        xeon = transpose_times["xeon_4310t"]["Naive"]
        for key in ("raspberry_pi_4", "mango_pi_d1", "visionfive_jh7100"):
            assert xeon < transpose_times[key]["Naive"]


class TestTransposeUtilizationClaims:
    """Section 4.2 / Fig. 3: optimization raises the relative bandwidth
    utilization on every device; Mango Pi stays low."""

    def test_optimized_utilization_exceeds_naive(self, transpose_times):
        essential = 2 * 8 * 256 * 256
        for key, times in transpose_times.items():
            naive = relative_bandwidth_utilization(times["Naive"], 1.0, essential, clamp=False)
            best = relative_bandwidth_utilization(
                min(times.values()), 1.0, essential, clamp=False
            )
            assert best > naive, key

    def test_mango_utilization_lowest_when_optimized(self, transpose_times):
        from repro.experiments import fig1

        essential = 2 * 8 * 256 * 256
        utils = {}
        for key, times in transpose_times.items():
            stream_gbs = fig1.dram_bandwidth(key, SCALE)
            utils[key] = relative_bandwidth_utilization(min(times.values()), stream_gbs, essential)
        assert utils["mango_pi_d1"] == min(utils.values())


class TestBlurClaims:
    """Section 4.3: 1D kernels beat naive but less than F-fold; 'Memory'
    gives the big jump; vectorization drives the Xeon's jump; parallel
    gains are limited by memory bandwidth on the boards."""

    def test_one_d_beats_naive_everywhere(self, blur_times):
        for key, times in blur_times.items():
            assert times["1D_kernels"] < times["Naive"], key

    def test_one_d_speedup_below_filter_size(self, blur_times):
        # F=9 here: complexity drops 9x but memory costs keep it well below.
        for key, times in blur_times.items():
            assert times["Naive"] / times["1D_kernels"] < 9, key

    def test_memory_variant_is_best_single_core(self, blur_times):
        for key, times in blur_times.items():
            assert times["Memory"] < times["1D_kernels"], key

    def test_parallel_helps_multicore_devices(self, blur_times):
        for key in ("xeon_4310t", "raspberry_pi_4", "visionfive_jh7100"):
            assert blur_times[key]["Parallel"] < blur_times[key]["Memory"] * 1.01, key

    def test_parallel_scaling_bandwidth_limited_on_boards(self, blur_times):
        """RPi has 4 cores but DRAM-bound blur cannot scale 4x."""
        times = blur_times["raspberry_pi_4"]
        assert times["Memory"] / times["Parallel"] < 3.0

    def test_vectorization_drives_xeon_memory_jump(self):
        device = scaled_device("xeon_4310t", SCALE)
        program = blur.build("Memory", 64, 80, 9)
        scalar = simulate(program, device, check_capacity=False).seconds
        vectorized = simulate(
            AutoVectorize().run(program), device, check_capacity=False
        ).seconds
        assert vectorized < scalar / 1.5

    def test_unit_stride_helps_cache_starved_d1(self):
        device = scaled_device("mango_pi_d1", SCALE)
        h, w, F = 64, 80, 9
        naive = simulate(blur.build("Naive", h, w, F), device, check_capacity=False).seconds
        unit = simulate(blur.build("Unit-stride", h, w, F), device, check_capacity=False).seconds
        assert unit < naive
