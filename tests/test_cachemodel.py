"""Differential soundness gate for the symbolic cache classifier.

Every certificate the classifier emits is a falsifiable claim about the
exact simulator: STREAMING / RESIDENT / CONFLICT runs must reproduce the
simulator's access/hit/miss counts and the PMU's 3C attribution to the
access, and CONFLICT runs must additionally confine their misses to the
cited sets.  These tests replay the figure grid (at tier-1 sizes) and
hypothesis-generated random affine traces through
:func:`repro.analysis.cachemodel.validate_analysis`; any discrepancy is
a soundness bug and fails CI.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.cachemodel import (
    CONFLICT,
    UNKNOWN,
    GroupAnalysis,
    LevelGeom,
    SegmentGroup,
    replay_group_level,
    validate_group,
)
from repro.analysis.cachemodel.classify import _classify_group_level
from repro.analysis.cachemodel.segments import _walk_group
from repro.analysis.reuse import lines_of_segments, reuse_histogram
from repro.exec.trace import RefInfo, Segment
from repro.observe.analyze import AnalyzeCell, aggregate_coverage, run_analyze

# Tier-1 grid sizes: small enough for CI, large enough that transpose
# column walks overflow the scaled L1s and blur windows go resident.
TRANSPOSE_N = 64
BLUR_W = 32
BLUR_F = 5

GRID = [
    # Fig. 2 and Fig. 6: every paper variant on the single-level LRU
    # device (the Section 4.2 testbed) ...
    ("transpose", "Naive", "mango_pi_d1"),
    ("transpose", "Parallel", "mango_pi_d1"),
    ("transpose", "Blocking", "mango_pi_d1"),
    ("transpose", "Manual_blocking", "mango_pi_d1"),
    ("transpose", "Dynamic", "mango_pi_d1"),
    ("blur", "Naive", "mango_pi_d1"),
    ("blur", "Unit-stride", "mango_pi_d1"),
    ("blur", "1D_kernels", "mango_pi_d1"),
    ("blur", "Memory", "mango_pi_d1"),
    ("blur", "Parallel", "mango_pi_d1"),
    # ... plus multi-level LRU, 3-level, and random-replacement devices
    # on the variants that stress them.
    ("transpose", "Naive", "raspberry_pi_4"),
    ("transpose", "Blocking", "raspberry_pi_4"),
    ("blur", "Naive", "raspberry_pi_4"),
    ("transpose", "Naive", "xeon_4310t"),
    ("blur", "Memory", "xeon_4310t"),
    ("transpose", "Naive", "visionfive_jh7100"),
    ("blur", "Naive", "visionfive_jh7100"),
]


def _cell(kernel, variant, device):
    n = TRANSPOSE_N if kernel == "transpose" else BLUR_W
    f = None if kernel == "transpose" else BLUR_F
    return run_analyze(kernel, variant, device, n=n, filter_size=f, validate=True)


@pytest.fixture(scope="module")
def grid_cells():
    return [_cell(*spec) for spec in GRID]


class TestFigureGrid:
    def test_every_certificate_holds_under_replay(self, grid_cells):
        for cell in grid_cells:
            assert cell.problems == [], (
                f"{cell.kernel}/{cell.variant}@{cell.base_device}: "
                + "; ".join(cell.problems)
            )

    def test_aggregate_coverage_meets_target(self, grid_cells):
        # The acceptance bar: >= 80% of the figure grid's traffic gets a
        # non-UNKNOWN verdict (random-replacement levels honestly can't).
        assert aggregate_coverage(grid_cells) >= 0.8

    def test_lru_devices_classify_everything(self, grid_cells):
        for cell in grid_cells:
            if cell.base_device != "mango_pi_d1" or cell.kernel != "transpose":
                continue
            assert cell.analysis.overall_coverage == 1.0

    def test_random_policy_stays_honest(self, grid_cells):
        # visionfive's L1 is random-replacement: revisit outcomes are
        # unprovable, so coverage must drop instead of guessing.
        vf = [c for c in grid_cells if c.base_device == "visionfive_jh7100"]
        assert vf and all(c.analysis.overall_coverage < 1.0 for c in vf)
        for cell in vf:
            for run in cell.analysis.certificates():
                if run.verdict == UNKNOWN:
                    assert run.misses == 0 and run.hits == 0  # claims nothing

    def test_transpose_naive_shows_conflict_story(self, grid_cells):
        # Section 4.2: the Naive column walk's reuse distance fits the
        # fully-associative shadow but the set mapping thrashes anyway —
        # the classifier must prove CONFLICT runs with per-set evidence.
        cell = next(
            c for c in grid_cells
            if (c.kernel, c.variant, c.base_device)
            == ("transpose", "Naive", "mango_pi_d1")
        )
        conflicts = [
            r for r in cell.analysis.certificates() if r.verdict == CONFLICT
        ]
        assert conflicts
        sets = cell.analysis.geoms[0].sets
        for run in conflicts:
            assert run.conflict > 0
            assert run.conflict_sets
            assert all(0 <= idx < sets for idx in run.conflict_sets)
            assert sum(run.conflict_sets.values()) == run.conflict
            # the thrash happens under capacity: the FA shadow would hit
            assert run.distance_hi is not None
            assert run.distance_hi < cell.analysis.geoms[0].capacity_lines

    def test_proof_chains_verify_and_recheck(self, grid_cells):
        audited = 0
        for cell in grid_cells:
            for run in cell.analysis.certificates():
                if run.verdict == UNKNOWN:
                    continue
                assert run.proof.verified, (
                    f"{cell.kernel}/{cell.variant}@{cell.base_device} "
                    f"{run.array} t={run.t_lo}: " + "\n".join(run.proof.render())
                )
                audited += 1
        assert audited > 0
        # Re-derive a sample of discharged steps from their payloads (the
        # audit path users run on a certificate they don't trust).
        cell = grid_cells[0]
        for run in cell.analysis.certificates()[:32]:
            assert run.proof.check()

    def test_predicted_totals_match_simulator_on_full_coverage(self, grid_cells):
        cell = next(
            c for c in grid_cells
            if (c.kernel, c.variant, c.base_device)
            == ("transpose", "Naive", "mango_pi_d1")
        )
        geom = cell.analysis.geoms[0]
        for ga in cell.analysis.groups:
            replay = replay_group_level(ga.group, geom)
            total = replay.cum[-1]
            res = ga.levels[geom.name]
            assert res.coverage == 1.0
            pred = res.predicted()
            assert pred["accesses"] == total[0]
            assert pred["misses"] == total[2]
            assert (pred["compulsory"], pred["capacity"], pred["conflict"]) \
                == total[3:6]


# -- hypothesis: random affine traces ----------------------------------------


def _segment_strategy():
    contiguous = st.builds(
        lambda base, count, sign: Segment(0, 64 * base, 8 * sign, count, False, 8),
        st.integers(0, 24), st.integers(1, 40), st.sampled_from([1, -1]),
    )
    line_ap = st.builds(
        lambda base, step, count: Segment(0, 64 * base, 64 * step, count, False, 8),
        st.integers(0, 24), st.sampled_from([-3, -2, -1, 1, 2, 3]),
        st.integers(1, 16),
    )
    point = st.builds(
        lambda base: Segment(0, 64 * base, 0, 1, False, 8),
        st.integers(0, 24),
    )
    return st.one_of(contiguous, line_ap, point)


def _group(segments):
    ref = RefInfo(0, "a", False, 8, 0, "i", 1)
    group = SegmentGroup(core=0, ref=ref, segments=list(segments))
    _walk_group(group, 64)
    return group


def _fa_geom(capacity):
    return LevelGeom(
        name="FA", size_bytes=capacity * 64, ways=capacity, sets=1,
        capacity_lines=capacity, policy="lru",
    )


class TestRandomTraces:
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.lists(_segment_strategy(), min_size=1, max_size=24),
        st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_symbolic_matches_histogram_and_simulator(self, segments, capacity):
        """The three-way differential property: on a fully-associative
        LRU level, the symbolic classification, the stack-distance
        histogram and the exact simulator must tell the same story."""
        group = _group(segments)
        geom = _fa_geom(capacity)
        result = _classify_group_level(group, geom, build_proofs=False)

        # 1. every claim survives the exact replay (PMU 3C included)
        ga = GroupAnalysis(group=group, levels={geom.name: result})
        assert validate_group(ga, [geom]) == []

        # 2. the simulator agrees with the textbook stack-distance oracle
        replay = replay_group_level(group, geom)
        hist = reuse_histogram(lines_of_segments(group.segments))
        sim_misses = replay.cum[-1][2]
        assert sim_misses == round(hist.miss_ratio(capacity) * hist.total)

        # 3. full classification implies exact total prediction
        if all(r.verdict != UNKNOWN for r in result.runs):
            assert result.coverage == 1.0
            assert sum(r.misses for r in result.runs) == sim_misses

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_segment_strategy(), min_size=1, max_size=16))
    def test_set_mapped_levels_stay_sound(self, segments):
        """Small set-mapped LRU levels: everything classified must hold;
        CONFLICT misses must stay inside the cited sets."""
        group = _group(segments)
        for sets, ways in ((4, 2), (8, 1), (2, 4)):
            geom = LevelGeom(
                name="L1", size_bytes=sets * ways * 64, ways=ways, sets=sets,
                capacity_lines=sets * ways, policy="lru",
            )
            result = _classify_group_level(group, geom, build_proofs=False)
            ga = GroupAnalysis(group=group, levels={geom.name: result})
            assert validate_group(ga, [geom]) == []

    def test_gap_cap_degrades_to_unknown_not_to_lies(self):
        # A revisit reaching past GAP_CAP segments gets distance bounds
        # only; with bounds straddling the capacity it must go UNKNOWN.
        from repro.analysis.cachemodel import GAP_CAP

        far = [Segment(0, 64 * (i + 2), 0, 1, False, 8) for i in range(GAP_CAP + 8)]
        segments = [Segment(0, 0, 0, 1, False, 8)] + far + [Segment(0, 0, 0, 1, False, 8)]
        group = _group(segments)
        record = group.records[-1]
        assert record.classes and not record.classes[0].exact
        geom = _fa_geom(16)
        result = _classify_group_level(group, geom, build_proofs=False)
        ga = GroupAnalysis(group=group, levels={geom.name: result})
        assert validate_group(ga, [geom]) == []
        assert result.runs[-1].verdict == UNKNOWN


class TestAnalyzeCellApi:
    def test_cell_accessors(self):
        cell = _cell("transpose", "Blocking", "mango_pi_d1")
        assert isinstance(cell, AnalyzeCell)
        assert cell.touches > 0
        assert 0 < cell.classified_touches <= cell.touches
        assert cell.problems == []

    def test_json_and_sarif_render(self):
        from repro.observe.analyze import cell_dict, render_json, render_sarif
        import json

        cell = _cell("transpose", "Naive", "mango_pi_d1")
        payload = json.loads(render_json([cell]))
        assert payload["tool"] == "repro-analyze"
        assert payload["cells"][0]["overall_coverage"] == 1.0
        doc = json.loads(render_sarif([cell]))
        assert doc["version"] == "2.1.0"
        rules = {r["ruleId"] for run in doc["runs"] for r in run["results"]}
        assert "CACHE-CONFLICT" in rules
        assert "CACHE-UNSOUND" not in rules
        d = cell_dict(cell)
        assert d["coverage"]["L1"] == 1.0
