"""Code-generator tests: IR programs compiled to RV64 must agree with the
IR interpreter, scalar and RVV alike."""

import numpy as np
import pytest

from repro.exec import run_program
from repro.ir import DType, LoopBuilder
from repro.kernels import blur, common, stream, transpose
from repro.riscv import compile_and_run, generate_assembly
from repro.riscv.codegen import CodegenError
from repro.transforms import AutoVectorize, TileTriangular2D, Unroll, apply_passes

from tests.conftest import transpose_program, triad_program


class TestScalarCodegen:
    @pytest.mark.parametrize("test", ["copy", "scale", "add", "triad"])
    def test_stream_kernels(self, test, rng):
        n = 48
        program = stream.build(test, n, parallel=False)
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        expect = run_program(program, inputs)
        got, _ = compile_and_run(program, inputs)
        assert np.array_equal(got["a"], expect["a"])

    def test_transpose_naive(self, rng):
        n = 10
        mat = rng.random((n, n))
        got, _ = compile_and_run(transpose.naive(n), {"mat": mat})
        assert np.array_equal(got["mat"], mat.T)

    def test_transpose_blocked_with_minmax_bounds(self, rng):
        n = 12
        program = apply_passes(transpose_program(n), [TileTriangular2D("i", "j", 4)])
        mat = rng.random((n, n))
        got, _ = compile_and_run(program, {"mat": mat})
        assert np.array_equal(got["mat"], mat.T)

    def test_blur_f32(self, rng):
        h, w, F = 10, 9, 3
        program = blur.build("Memory", h, w, F)
        img = common.random_image(h, w, seed=9)
        expect = run_program(program, {"src": img})["dst"]
        got, _ = compile_and_run(program, {"src": img})
        assert np.allclose(got["dst"], expect, atol=1e-6)

    def test_unrolled_program(self, rng):
        n = 22
        program = apply_passes(triad_program(n), [Unroll("i", 4)])
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        got, _ = compile_and_run(program, inputs)
        assert np.array_equal(got["a"], run_program(program, inputs)["a"])

    def test_fma_fusion_emitted(self):
        asm = generate_assembly(stream.triad(16, parallel=False))
        assert "fmadd.d" in asm

    def test_initialized_constant_arrays_loaded(self):
        program = blur.build("Naive", 8, 8, 3)
        got, _ = compile_and_run(program, {"src": common.random_image(8, 8)})
        assert got["k2"].sum() == pytest.approx(1.0, abs=1e-5)

    def test_register_scope_not_supported(self):
        program = blur.build("Unit-stride", 8, 8, 3)
        with pytest.raises(Exception):  # register arrays have no address
            compile_and_run(program, {"src": common.random_image(8, 8)})


class TestRvvCodegen:
    @pytest.mark.parametrize("test", ["copy", "scale", "add", "triad"])
    @pytest.mark.parametrize("vlen", [128, 256])
    def test_stream_kernels_vectorized(self, test, vlen, rng):
        n = 37  # deliberately not a multiple of any VLMAX
        program = AutoVectorize(min_trips=4).run(stream.build(test, n, parallel=False))
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        expect = run_program(program, inputs)
        got, emu = compile_and_run(program, inputs, use_rvv=True, vlen_bits=vlen)
        assert np.array_equal(got["a"], expect["a"])
        assert emu.stats.vector_ops > 0

    def test_rvv_reduces_instruction_count(self, rng):
        n = 512
        program = AutoVectorize().run(stream.triad(n, parallel=False))
        inputs = {"b": rng.random(n), "c": rng.random(n)}
        _, scalar = compile_and_run(program, inputs, use_rvv=False)
        _, vector = compile_and_run(program, inputs, use_rvv=True, vlen_bits=256)
        assert vector.stats.instructions < scalar.stats.instructions / 2

    def test_rvv_asm_contains_vsetvli_loop(self):
        program = AutoVectorize().run(stream.triad(64, parallel=False))
        asm = generate_assembly(program, use_rvv=True)
        assert "vsetvli" in asm and "vfmacc.vf" in asm

    def test_unsupported_body_falls_back_to_scalar(self, rng):
        # f32 accumulate store: not in the RVV pattern -> scalar fallback.
        h, w, F = 8, 8, 3
        program = AutoVectorize().run(blur.build("Memory", h, w, F))
        img = common.random_image(h, w, seed=2)
        expect = run_program(program, {"src": img})["dst"]
        got, emu = compile_and_run(program, {"src": img}, use_rvv=True)
        assert np.allclose(got["dst"], expect, atol=1e-6)


class TestTracing:
    def test_traced_run_feeds_memsim(self):
        from repro.memsim import Cache, MemoryHierarchy

        program = stream.copy(64, parallel=False)
        got, emu = compile_and_run(program, trace=True)
        hierarchy = MemoryHierarchy([Cache("L1", 4096, 4)])
        for segment in emu.memory.trace:
            hierarchy.process_segment(segment)
        assert hierarchy.caches[0].stats.accesses > 0
