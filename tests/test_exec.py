"""Tests for the interpreter and the symbolic trace generator."""

import numpy as np
import pytest

from repro.analysis import count_program
from repro.errors import SimulationError
from repro.exec import Segment, TraceGenerator, run_program, split_dynamic, split_static
from repro.ir import DType, LoopBuilder, MemoryLayout
from repro.transforms import Parallelize, apply_passes

from tests.conftest import transpose_program, triad_program


class TestInterpreter:
    def test_triad(self, rng):
        n = 64
        x, y = rng.random(n), rng.random(n)
        out = run_program(triad_program(n), {"b": x, "c": y})
        assert np.allclose(out["a"], x + 3.0 * y)

    def test_transpose(self, rng):
        n = 16
        mat = rng.random((n, n))
        out = run_program(transpose_program(n), {"mat": mat})
        assert np.array_equal(out["mat"], mat.T)

    def test_initial_data_used(self):
        b = LoopBuilder("p")
        k = b.constant_array("k", np.arange(4, dtype=np.float64))
        a = b.array("a", DType.F64, (4,))
        with b.loop("i", 0, 4) as i:
            b.store(a, i, k[i] * 2.0)
        out = run_program(b.build())
        assert np.array_equal(out["a"], [0.0, 2.0, 4.0, 6.0])

    def test_zeros_default(self):
        out = run_program(triad_program(8))
        assert np.array_equal(out["a"], np.zeros(8))

    def test_bad_input_shape(self):
        with pytest.raises(SimulationError, match="shape"):
            run_program(triad_program(8), {"b": np.zeros(9)})

    def test_accumulate_store(self):
        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        with b.loop("r", 0, 3):
            with b.loop("i", 0, 4) as i:
                b.accumulate(a, i, 2.0)
        out = run_program(b.build())
        assert np.array_equal(out["a"], [6.0] * 4)

    def test_f32_arrays_round(self, rng):
        from repro.kernels import blur, common

        img = common.random_image(12, 10)
        out = run_program(blur.build("Memory", 12, 10, 3), {"src": img})
        assert out["dst"].dtype == np.float32

    def test_min_max_ops(self):
        from repro.ir.expr import BinOp

        b = LoopBuilder("p")
        a = b.array("a", DType.F64, (4,))
        x = b.array("x", DType.F64, (4,))
        with b.loop("i", 0, 4) as i:
            b.store(a, i, BinOp("min", x[i], 0.5))
        out = run_program(b.build(), {"x": np.array([0.1, 0.9, 0.4, 0.7])})
        assert np.array_equal(out["a"], [0.1, 0.5, 0.4, 0.5])


class TestSchedules:
    def test_static_slabs(self):
        values = list(range(10))
        parts = split_static(values, 3, None)
        assert parts == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_static_chunked_round_robin(self):
        values = list(range(8))
        parts = split_static(values, 2, 2)
        assert parts == [[0, 1, 4, 5], [2, 3, 6, 7]]

    def test_dynamic_balances_cost(self):
        values = list(range(8))
        cost = lambda v: 100 if v == 0 else 1
        parts = split_dynamic(values, 2, 1, cost)
        loads = [sum(cost(v) for v in part) for part in parts]
        # One core takes the expensive iteration, the other everything else.
        assert min(loads) >= 1 and abs(loads[0] - loads[1]) <= 100
        assert sorted(values) == sorted(parts[0] + parts[1])

    def test_dynamic_partitions_everything(self):
        values = list(range(23))
        parts = split_dynamic(values, 4, 3, lambda v: v + 1)
        assert sorted(v for part in parts for v in part) == values


class TestTraceGenerator:
    def test_triad_segments(self):
        n = 64
        gen = TraceGenerator(triad_program(n), num_cores=1)
        segments = list(gen.core_stream(0))
        # One segment per reference: loads of b and c, store of a.
        assert len(segments) == 3
        reads = [s for s in segments if not s.is_write]
        writes = [s for s in segments if s.is_write]
        assert len(reads) == 2 and len(writes) == 1
        assert all(s.count == n and s.stride == 8 for s in segments)

    def test_work_counts_match_analysis(self):
        program = transpose_program(32)
        gen = TraceGenerator(program, num_cores=1)
        for _ in gen.core_stream(0):
            pass
        static = count_program(program)
        traced = gen.work[0].total
        assert traced.loads == static.loads
        assert traced.stores == static.stores
        assert traced.flops == static.flops

    def test_parallel_partitions_work(self):
        n = 64
        program = apply_passes(triad_program(n), [Parallelize("i")])
        gen = TraceGenerator(program, num_cores=4)
        totals = []
        for core in range(4):
            for _ in gen.core_stream(core):
                pass
            totals.append(gen.work[core].total.stores)
        assert sum(totals) == n
        assert max(totals) == 16

    def test_serial_program_only_runs_on_core0(self):
        gen = TraceGenerator(triad_program(16), num_cores=2)
        assert list(gen.core_stream(1)) == []
        assert len(list(gen.core_stream(0))) == 3

    def test_line_footprint_matches_exact_enumeration(self):
        """The compressed segments touch exactly the element footprint."""
        n = 16
        program = transpose_program(n)
        layout = MemoryLayout(program)
        gen = TraceGenerator(program, num_cores=1, layout=layout)
        touched = set()
        for seg in gen.core_stream(0):
            for k in range(seg.count):
                touched.add(seg.base + k * seg.stride)
        base = layout.address_of(program.array("mat"))
        expected = {
            base + (i * n + j) * 8 for i in range(n) for j in range(n) if i != j
        }
        assert touched == expected

    def test_pair_merge_equivalence(self):
        """The (outer, inner) merged emission touches the same bytes as the
        per-innermost-loop fallback."""
        b = LoopBuilder("pair")
        a = b.array("a", DType.F32, (8, 12))
        out = b.array("out", DType.F32, (8, 12))
        with b.loop("i", 0, 8) as i:
            with b.loop("j", 0, 4) as j:
                with b.loop("c", 0, 3) as c:
                    b.store(out, (i, j * 3 + c), a[i, j * 3 + c])
        program = b.build()
        gen = TraceGenerator(program, num_cores=1)
        merged_bytes = set()
        merged_segments = 0
        for seg in gen.core_stream(0):
            merged_segments += 1
            for k in range(seg.count):
                merged_bytes.add((seg.base + k * seg.stride, seg.is_write))
        # 8 outer iterations x 2 refs = 16 segments (vs 8*4*2 = 64 unmerged)
        assert merged_segments == 16
        layout = gen.layout
        a_base = layout.address_of(program.array("a"))
        out_base = layout.address_of(program.array("out"))
        expected = set()
        for i in range(8):
            for jj in range(12):
                expected.add((a_base + (i * 12 + jj) * 4, False))
                expected.add((out_base + (i * 12 + jj) * 4, True))
        assert merged_bytes == expected

    def test_local_arrays_have_per_core_addresses(self):
        from repro.kernels import transpose

        program = transpose.manual_blocking(16, block=4)
        gen = TraceGenerator(program, num_cores=2)
        layout = gen.layout
        buf = program.array("buf1")
        assert layout.address_of(buf, 0) != layout.address_of(buf, 1)

    def test_register_arrays_emit_no_segments(self):
        b = LoopBuilder("p")
        r = b.array("r", DType.F32, (3,), scope="register")
        a = b.array("a", DType.F32, (12,))
        with b.loop("i", 0, 4) as i:
            with b.loop("c", 0, 3) as c:
                b.accumulate(r, c, a[i * 3 + c])
        gen = TraceGenerator(b.build(), num_cores=1)
        segments = list(gen.core_stream(0))
        assert all(seg.base >= 0x10000 for seg in segments)
        # only reads of `a`
        assert all(not seg.is_write for seg in segments)

    def test_dynamic_schedule_balances_triangular(self):
        program = apply_passes(
            transpose_program(64), [Parallelize("i", schedule="dynamic")]
        )
        gen = TraceGenerator(program, num_cores=4)
        loads = []
        for core in range(4):
            for _ in gen.core_stream(core):
                pass
            loads.append(gen.work[core].total.loads)
        assert sum(loads) == count_program(program).loads
        # Dynamic scheduling keeps the imbalance small.
        assert max(loads) <= 1.35 * (sum(loads) / 4)

    def test_static_schedule_imbalanced_on_triangular(self):
        program = apply_passes(transpose_program(64), [Parallelize("i")])
        gen = TraceGenerator(program, num_cores=4)
        loads = []
        for core in range(4):
            for _ in gen.core_stream(core):
                pass
            loads.append(gen.work[core].total.loads)
        # First slab of rows is by far the heaviest.
        assert loads[0] > 2 * loads[3]

    def test_bad_core_index(self):
        gen = TraceGenerator(triad_program(8), num_cores=2)
        with pytest.raises(SimulationError):
            list(gen.core_stream(5))


class TestSegment:
    def test_lines(self):
        seg = Segment(0, 0, 8, 16, False, 8)
        assert list(seg.lines(64)) == [0, 1]

    def test_strided_lines(self):
        seg = Segment(0, 0, 128, 4, False, 8)
        assert list(seg.lines(64)) == [0, 2, 4, 6]

    def test_span(self):
        assert Segment(0, 0, 8, 16, False, 8).span_bytes == 128
        assert Segment(0, 0, 0, 1, False, 4).span_bytes == 4
