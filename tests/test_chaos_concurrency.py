"""Chaos under concurrency: faults injected into multiprocess fan-out.

The batch chaos suite (``test_runtime_faults``) proves each recovery
path serially; this suite proves the same degradations hold when cells
run across a spawn :class:`~repro.runtime.WorkPool` — workers inherit
``REPRO_FAULTS`` from the parent environment at spawn, every cell still
terminates in a structured outcome, and the rendered figure output is
byte-identical to the serial degraded run (collection order is fixed by
the task list, and deterministic fault plans fail the same attempts in
any process placement).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig2
from repro.runtime import WorkPool, clear_faults, read_journal
from repro.runtime.journal import default_journal_path


@pytest.fixture(autouse=True)
def _chaos_env(monkeypatch):
    """Fast, quiet, isolated chaos runs; cleared afterwards."""
    monkeypatch.setenv("REPRO_PMU", "off")
    monkeypatch.setenv("REPRO_RETRY_BASE", "0.001")
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_DEADLINE", raising=False)
    clear_faults()
    yield
    clear_faults()


def _degraded_panel(monkeypatch, tmp_path, tag, pool=None):
    """One fig2 panel slice under a fault plan that fails every attempt."""
    from repro.experiments.runner import reset_default_runner

    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / f"cache_{tag}.json"))
    monkeypatch.setenv("REPRO_FAULTS", "sim_flaky:5")
    monkeypatch.setenv("REPRO_RETRIES", "2")
    clear_faults()
    reset_default_runner()
    try:
        panel = fig2.run_panel(
            8192, variants=["Naive", "Blocking"], pool=pool or WorkPool.serial()
        )
        return fig2.render([panel])
    finally:
        reset_default_runner()


class TestDegradedRenderParity:
    def test_parallel_degraded_render_is_byte_identical_to_serial(
        self, monkeypatch, tmp_path
    ):
        """With every cell failing deterministically (sim_flaky:5 beats
        2 retries), a 2-worker fig2 slice renders byte-for-byte what the
        serial run renders: same dashes, same footnotes, same order."""
        serial = _degraded_panel(monkeypatch, tmp_path, "serial")
        with WorkPool(jobs=2) as pool:
            parallel = _degraded_panel(monkeypatch, tmp_path, "parallel", pool=pool)
        assert parallel == serial
        assert "—" in serial  # the cells really did degrade

    def test_degraded_cells_are_journalled_per_worker(self, monkeypatch, tmp_path):
        with WorkPool(jobs=2) as pool:
            _degraded_panel(monkeypatch, tmp_path, "journalled", pool=pool)
        journal = default_journal_path(str(tmp_path / "cache_journalled.json"))
        entries = read_journal(journal)
        assert entries, "workers must journal their failed cells"
        assert all(e.outcome == "failed" for e in entries)
        # Cells ran in the spawned workers, not the parent.
        workers = {e.worker for e in entries}
        assert workers and "" not in workers
        assert all(w != str(os.getpid()) for w in workers)


class TestQuarantineUnderConcurrency:
    def test_cache_corrupt_does_not_deadlock_parallel_cells(
        self, monkeypatch, tmp_path
    ):
        """``cache_corrupt`` garbles the shared cache after every write;
        parallel workers hitting the quarantined entry must rebuild and
        complete rather than deadlock on the per-key file locks."""
        from repro.experiments.runner import reset_default_runner

        cache = str(tmp_path / "corrupt_cache.json")
        monkeypatch.setenv("REPRO_CACHE", cache)
        monkeypatch.setenv("REPRO_FAULTS", "cache_corrupt")
        monkeypatch.setenv("REPRO_RETRIES", "2")
        clear_faults()
        reset_default_runner()
        tasks = [
            (variant, 64, 16, "mango_pi_d1", 16)
            for variant in ("Naive", "Blocking", "Parallel")
        ] * 2  # duplicate keys force cache (re)reads of corrupted entries
        try:
            with WorkPool(jobs=2) as pool:
                results = pool.map(fig2._cell, tasks)
        finally:
            reset_default_runner()
        assert len(results) == len(tasks)
        for result in results:
            assert result.ok, result.reason
            assert result.record.seconds > 0
        # The fault really fired: the shared cache file ends up garbled.
        with open(cache) as fh:
            assert "corrupted-by-fault-injection" in fh.read()
