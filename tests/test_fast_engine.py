"""Differential tests for the fast replay engines.

The fast engine's contract is *bit-identity* with the exact simulator —
not approximate agreement.  These tests run the same segment streams
through the exact :class:`~repro.memsim.hierarchy.MemoryHierarchy`, the
pure-Python :class:`~repro.memsim.columnar.FastHierarchy` and (when a C
compiler is available) the native :class:`~repro.memsim.native.NativeHierarchy`,
and assert that every observable — hits, misses, prefetch hits,
writebacks, DRAM line traffic, TLB walks, and the full per-reference PMU
attribution state — is exactly equal, including on runs that cross the
certified-skip/replay boundary mid-stream.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.trace import Segment
from repro.memsim import (
    C906_PREFETCH,
    Cache,
    MemoryHierarchy,
    NO_PREFETCH,
    TlbSpec,
    snapshot,
)
from repro.memsim.cache import set_indices, set_mask
from repro.memsim.columnar import FastHierarchy, fast_cache
from repro.memsim.native import NativeHierarchy, native_available, native_cache

TLB = TlbSpec(l1_entries=4, l1_ways=0, l2_entries=16, l2_ways=2, walk_cycles=40)

#: (name, size_bytes, ways, policy) rows for a small two-level hierarchy.
SMALL_LEVELS = [("L1", 4096, 4, "lru"), ("L2", 16384, 8, "lru")]


def seg(base, stride, count, write=False, esize=8, ref=0):
    return Segment(ref, base, stride, count, write, esize)


def build_engines(levels=SMALL_LEVELS, prefetch=C906_PREFETCH, tlb=TLB):
    """One hierarchy per engine over identical cache geometry."""
    engines = {}
    engines["exact"] = MemoryHierarchy(
        [Cache(row[0], row[1], row[2], 64, row[3]) for row in levels],
        prefetch=prefetch,
        tlb=tlb,
    )
    engines["fast"] = FastHierarchy(
        [fast_cache(row[0], row[1], row[2], 64, row[3]) for row in levels],
        prefetch=prefetch,
        tlb=tlb,
    )
    if native_available():
        engines["native"] = NativeHierarchy(
            [native_cache(row[0], row[1], row[2], 64, row[3]) for row in levels],
            prefetch=prefetch,
            tlb=tlb,
        )
    return engines


def pmu_state(pmu):
    """Every observable of a PMU, as comparable plain data."""
    state = {
        "counters": dict(pmu.counters()),
        "useful": pmu.prefetch_useful,
        "polluting": pmu.prefetch_polluting,
        "accesses": dict(pmu.ref_accesses),
        "bytes": dict(pmu.ref_bytes),
        "dram_read": dict(pmu.ref_dram_read_lines),
        "dram_written": dict(pmu.ref_dram_written_lines),
        "tlb": dict(pmu.ref_tlb_walks),
    }
    for level in pmu.levels:
        state[level.name] = (
            level.compulsory,
            level.capacity,
            level.conflict,
            dict(level.set_conflicts),
            {k: tuple(v) for k, v in level.per_ref.items()},
        )
    return state


def run_all(segments, levels=SMALL_LEVELS, prefetch=C906_PREFETCH, tlb=TLB,
            pmu=True, flush=False):
    """Run ``segments`` through every engine; return {engine: observables}."""
    out = {}
    for name, hier in build_engines(levels, prefetch, tlb).items():
        p = hier.attach_pmu() if pmu else None
        hier.run(segments)
        if flush:
            hier.flush()
        out[name] = {
            "snapshot": snapshot(hier),
            "dirty": sum(c.flush_dirty_count() for c in hier.caches),
            "pmu": pmu_state(p) if p else None,
        }
    return out


def assert_engines_agree(results):
    exact = results["exact"]
    for name, got in results.items():
        if name == "exact":
            continue
        assert got["snapshot"] == exact["snapshot"], name
        assert got["dirty"] == exact["dirty"], name
        assert got["pmu"] == exact["pmu"], name


# ---------------------------------------------------------------------------
# Random affine traces (satellite: hypothesis differential property)
# ---------------------------------------------------------------------------

segments_strategy = st.lists(
    st.builds(
        seg,
        base=st.integers(min_value=0, max_value=1 << 16),
        stride=st.sampled_from([-512, -64, -8, 0, 4, 8, 24, 64, 80, 512, 4096]),
        count=st.integers(min_value=1, max_value=200),
        write=st.booleans(),
        esize=st.sampled_from([4, 8]),
        ref=st.integers(min_value=0, max_value=3),
    ),
    min_size=1,
    max_size=20,
)


class TestRandomTraceDifferential:
    @settings(max_examples=60, deadline=None)
    @given(segments_strategy)
    def test_lru_engines_bit_identical(self, segments):
        assert_engines_agree(run_all(segments))

    @settings(max_examples=30, deadline=None)
    @given(segments_strategy)
    def test_random_policy_engines_bit_identical(self, segments):
        levels = [("L1", 4096, 4, "lru"), ("L2", 16384, 8, "random")]
        assert_engines_agree(run_all(segments, levels=levels))

    @settings(max_examples=30, deadline=None)
    @given(segments_strategy)
    def test_flush_writebacks_bit_identical(self, segments):
        assert_engines_agree(run_all(segments, flush=True))


# ---------------------------------------------------------------------------
# Certified-skip / replay boundary (satellite: mid-run engine transitions)
# ---------------------------------------------------------------------------

class TestSkipReplayBoundary:
    def phased_segments(self):
        """A stream engineered to hit all three fast-engine paths:

        * a streaming sweep much larger than L2 (ALL-MISS certificate),
        * repeated passes over a tiny footprint (RESIDENT certificate),
        * a same-set conflict ping-pong (certificates void -> replay),

        interleaved so certificate regimes flip mid-run.
        """
        tiny = [seg(0, 64, 8) for _ in range(6)]             # resident reuse
        sweep = [seg(1 << 20, 64, 2048, write=True)]          # streams thru L2
        # 4-way L1 set 0: five lines mapping to the same set, cycled.
        conflict = [seg(w * 64 * 1024, 0, 1) for w in range(5)] * 4
        return tiny + sweep + conflict + tiny + sweep + list(reversed(conflict))

    def test_boundary_crossing_bit_identical(self):
        assert_engines_agree(run_all(self.phased_segments()))

    def test_fast_engine_uses_all_three_paths(self):
        # The Python fast engine records which path credited each op; the
        # stream above must genuinely exercise skip AND replay paths,
        # otherwise the boundary test proves nothing.
        hier = build_engines()["fast"]
        hier.run(self.phased_segments())
        counts = hier.skip_counts()
        assert counts["streaming"] > 0
        assert counts["replayed"] > 0
        assert counts["resident"] + counts["streaming"] > 0

    def test_native_counts_everything_as_replayed(self):
        if not native_available():
            pytest.skip("no C toolchain for the native engine")
        hier = build_engines()["native"]
        hier.run(self.phased_segments())
        counts = hier.skip_counts()
        assert counts["resident"] == 0 and counts["streaming"] == 0
        assert counts["replayed"] > 0


# ---------------------------------------------------------------------------
# Writeback accounting unification (satellite: dirty-line accounting)
# ---------------------------------------------------------------------------

class TestWritebackUnification:
    def test_flush_dirty_count_matches_flush_charge(self):
        """``Cache.dirty_lines`` is the one definition of end-of-run
        writeback traffic: ``flush_dirty_count`` counts it per level,
        ``flush()`` charges its across-level dedup to DRAM — and every
        engine must agree line for line."""
        segments = [seg(i * 4096, 64, 32, write=True, ref=i % 3)
                    for i in range(24)]
        per_level = {}
        charged = {}
        for name, hier in build_engines().items():
            hier.run(segments)
            hier.drain()
            per_level[name] = [
                (c.flush_dirty_count(), sorted(c.dirty_lines()))
                for c in hier.caches
            ]
            union = set()
            for cache in hier.caches:
                union.update(cache.dirty_lines())
            before = hier.dram.written_lines
            hier.flush()
            charged[name] = hier.dram.written_lines - before
            assert charged[name] == len(union), name
            assert per_level[name][0][0] > 0, name   # workload really dirtied
        assert per_level["fast"] == per_level["exact"]
        assert charged["fast"] == charged["exact"]
        if "native" in per_level:
            assert per_level["native"] == per_level["exact"]
            assert charged["native"] == charged["exact"]

    def test_pmu_and_engines_agree_on_writeback_bytes(self):
        """Total DRAM writeback bytes: identical across engines, and the
        PMU's per-reference attribution sums to the DRAM model's count."""
        segments = [seg(i * 2048, 64, 64, write=(i % 2 == 0), ref=i % 4)
                    for i in range(32)]
        written = {}
        for name, hier in build_engines().items():
            pmu = hier.attach_pmu()
            hier.run(segments)
            hier.flush()
            written[name] = hier.dram.written_lines * 64
            attributed = sum(pmu.ref_dram_written_lines.values())
            assert attributed == hier.dram.written_lines, name
        assert len(set(written.values())) == 1, written
        assert written["exact"] > 0


# ---------------------------------------------------------------------------
# Set-index helper (satellite: non-power-of-two set counts)
# ---------------------------------------------------------------------------

class TestSetIndexHelper:
    def test_set_mask_power_of_two(self):
        assert set_mask(128) == 127
        assert set_mask(1) == 0

    def test_set_mask_non_power_of_two(self):
        assert set_mask(20480) is None   # the Xeon 4310T's 15 MiB/12-way L3
        assert set_mask(3) is None

    def test_set_indices_matches_scalar_rule(self):
        lines = [0, 1, 127, 128, 20479, 20480, 12345678, -1 & (1 << 40)]
        for num_sets in (128, 20480):
            mask = set_mask(num_sets)
            batch = set_indices(lines, num_sets, mask)
            cache = Cache("L", num_sets * 12 * 64, 12)
            assert cache.num_sets == num_sets
            assert batch == [cache.set_index(line) for line in lines]

    def test_non_power_of_two_sets_all_engines(self):
        """A 20480-set cache exercises the modulo path of the shared
        helper in the exact scalar loop and both columnar batch paths."""
        levels = [("L1", 4096, 4, "lru"), ("L3", 15 * 2**20, 12, "lru")]
        # Strides straddling many sets, including multiples of 20480*64
        # that alias to the same set only under the modulo rule.
        segments = [
            seg(0, 64, 4096),
            seg(20480 * 64, 64, 4096, write=True),
            seg(7, 20480 * 64, 30, ref=1),
            seg(12345, -64, 2000, write=True, ref=2),
        ]
        assert_engines_agree(run_all(segments, levels=levels))


# ---------------------------------------------------------------------------
# Figure-grid slice (satellite: end-to-end differential through simulate())
# ---------------------------------------------------------------------------

class TestFigureSliceDifferential:
    @pytest.mark.parametrize("variant", ["Naive", "Blocking"])
    def test_fig2_cell_engines_identical(self, variant):
        from repro.experiments.config import (
            CACHE_SCALE,
            TRANSPOSE_BLOCK,
            scaled_device,
        )
        from repro.kernels import transpose
        from repro.simulate import simulate

        device = scaled_device("mango_pi_d1", CACHE_SCALE)
        program = transpose.build(variant, 256, block=TRANSPOSE_BLOCK)
        exact = simulate(program, device, pmu=True, engine="exact")
        fast = simulate(program, device, pmu=True, engine="fast")
        assert exact.seconds == fast.seconds
        assert exact.snapshots == fast.snapshots
        assert len(exact.pmus) == len(fast.pmus)
        for a, b in zip(exact.pmus, fast.pmus):
            assert pmu_state(a) == pmu_state(b)
