"""Correctness tests for the paper's kernel suites (interpreter vs numpy)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IRError
from repro.exec import run_program
from repro.kernels import blur, common, stream, transpose


class TestStream:
    @pytest.mark.parametrize("test", ["copy", "scale", "add", "triad"])
    def test_semantics(self, test, rng):
        n = 128
        x, y = rng.random(n), rng.random(n)
        out = run_program(stream.build(test, n), {"b": x, "c": y} if stream.TESTS[test].arrays == 3 else {"b": x})
        expected = {
            "copy": x,
            "scale": stream.SCALAR * x,
            "add": x + y,
            "triad": x + stream.SCALAR * y,
        }[test]
        assert np.allclose(out["a"], expected)

    def test_bytes_convention(self):
        assert stream.stream_bytes("copy", 100) == 1600
        assert stream.stream_bytes("triad", 100) == 2400

    def test_footprint_sizing(self):
        n = stream.array_elements_for_footprint("triad", 24 * 1024)
        assert n * 3 * 8 == 24 * 1024

    def test_unknown_test(self):
        with pytest.raises(IRError):
            stream.build("stride", 100)

    def test_parallel_flag(self):
        from repro.simulate import has_parallel_loop

        assert has_parallel_loop(stream.build("copy", 64, parallel=True))
        assert not has_parallel_loop(stream.build("copy", 64, parallel=False))


class TestTranspose:
    @pytest.mark.parametrize("variant", transpose.VARIANT_ORDER)
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_all_variants_all_sizes(self, variant, n, rng):
        mat = rng.random((n, n))
        out = run_program(transpose.build(variant, n, block=4), {"mat": mat})
        assert np.array_equal(out["mat"], mat.T)

    def test_non_divisible_blocking(self, rng):
        # The pure loop-transformation variants handle any size.
        mat = rng.random((30, 30))
        out = run_program(transpose.blocking(30, block=8), {"mat": mat})
        assert np.array_equal(out["mat"], mat.T)

    def test_manual_blocking_requires_divisibility(self):
        with pytest.raises(IRError, match="block"):
            transpose.manual_blocking(30, block=8)

    def test_unknown_variant(self):
        with pytest.raises(IRError):
            transpose.build("SuperFast", 16)

    def test_dynamic_schedule_set(self):
        from repro.ir import loops_in

        program = transpose.dynamic(16, block=4)
        outer = [l for l in loops_in(program.body) if l.var == "i_blk"][0]
        assert outer.parallel and outer.schedule == "dynamic"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(2, 24))
    def test_naive_involution(self, n):
        """Transposing twice is the identity — for any size."""
        mat = np.arange(n * n, dtype=np.float64).reshape(n, n)
        once = run_program(transpose.naive(n), {"mat": mat})["mat"]
        twice = run_program(transpose.naive(n), {"mat": once})["mat"]
        assert np.array_equal(twice, mat)

    def test_scratch_buffers_are_local(self):
        program = transpose.manual_blocking(16, block=4)
        assert {a.name for a in program.local_arrays} == {"buf1", "buf2"}


class TestBlur:
    @pytest.mark.parametrize("variant", blur.VARIANT_ORDER)
    def test_variants_match_reference(self, variant, rng):
        h, w, F = 14, 12, 5
        img = common.random_image(h, w, seed=3)
        out = run_program(blur.build(variant, h, w, F), {"src": img})["dst"]
        ref = blur.reference(img, F)
        assert np.allclose(out, ref, atol=2e-4)

    @pytest.mark.parametrize("size", [3, 5, 7])
    def test_filter_sizes(self, size, rng):
        h, w = 12, 11
        img = common.random_image(h, w, seed=4)
        out = run_program(blur.build("Memory", h, w, size), {"src": img})["dst"]
        assert np.allclose(out, blur.reference(img, size), atol=2e-4)

    def test_separable_equals_2d_exactly_in_f64(self):
        k1 = common.gaussian_kernel_1d(7).astype(np.float64)
        k2 = common.gaussian_kernel_2d(7).astype(np.float64)
        assert np.allclose(np.outer(k1, k1), k2, atol=1e-7)

    def test_kernel_normalized(self):
        assert common.gaussian_kernel_1d(19).sum() == pytest.approx(1.0, abs=1e-6)
        assert common.gaussian_kernel_2d(19).sum() == pytest.approx(1.0, abs=1e-5)

    def test_kernel_symmetric(self):
        k = common.gaussian_kernel_1d(9)
        assert np.allclose(k, k[::-1])

    def test_even_filter_rejected(self):
        with pytest.raises(IRError):
            blur.build("Naive", 20, 20, 4)
        with pytest.raises(ValueError):
            common.gaussian_kernel_1d(4)

    def test_image_too_small_rejected(self):
        with pytest.raises(IRError):
            blur.build("Naive", 5, 20, 7)

    def test_unknown_variant(self):
        with pytest.raises(IRError):
            blur.build("Turbo", 20, 20, 3)

    def test_borders_left_zero(self, rng):
        h, w, F = 12, 12, 3
        img = common.random_image(h, w, seed=5)
        out = run_program(blur.build("Naive", h, w, F), {"src": img})["dst"]
        assert np.all(out[0, :] == 0)  # first row untouched

    def test_unit_stride_uses_register_accumulators(self):
        program = blur.unit_stride(12, 10, 3)
        sums = program.array("sums")
        assert sums.scope == "register"

    def test_parallel_marks_both_passes(self):
        from repro.ir import loops_in

        program = blur.parallel(12, 10, 3)
        parallel_vars = {l.var for l in loops_in(program.body) if l.parallel}
        assert parallel_vars == {"i", "i2"}
