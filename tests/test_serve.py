"""The ``repro serve`` tier: admission, breaker, coalescing, drain, chaos.

The integration tests boot a real :class:`ServerHandle` (asyncio server
on a background thread, real TCP sockets on an ephemeral port) and talk
to it with the blocking :class:`ServeClient` — the same path the CI
smoke job uses.  Faults are injected via ``REPRO_FAULTS`` exactly like
the batch chaos suite, so degradation (retries, timeouts, breaker
trips) is deterministic.
"""

from __future__ import annotations

import http.client
import json
import re
import threading
import time

import pytest

from repro.observe.openmetrics import parse_exposition
from repro.runtime import clear_faults, default_journal_path, read_journal
from repro.serve import ServeConfig, ServerHandle
from repro.serve.admission import RateLimiter, TokenBucket, retry_after_for_queue
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.client import ServeClient, ServeError, ServeTimeout
from repro.serve.executor import execute_job, reset_runners
from repro.serve.jobs import TERMINAL_OUTCOMES, JobValidationError, resolve_spec

SPEC = {"kernel": "transpose", "variant": "Naive", "device": "mango_pi_d1", "n": 64}


@pytest.fixture(autouse=True)
def _serve_isolation(monkeypatch, tmp_path):
    """Fresh cache, no faults, no PMU, fast retries for every test."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_PMU", "off")
    monkeypatch.setenv("REPRO_RETRY_BASE", "0.001")
    monkeypatch.delenv("REPRO_RETRIES", raising=False)
    monkeypatch.delenv("REPRO_DEADLINE", raising=False)
    clear_faults()
    reset_runners()
    yield
    clear_faults()
    reset_runners()


def _config(tmp_path, **overrides) -> ServeConfig:
    defaults = dict(
        jobs=1,
        queue_max=8,
        drain_timeout_s=5.0,
        cache_path=str(tmp_path / "serve_cache.json"),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


# -- admission units -----------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_reject_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        now = 100.0
        assert bucket.take(now) == (True, 0.0)
        assert bucket.take(now) == (True, 0.0)
        ok, retry = bucket.take(now)
        assert not ok and retry == pytest.approx(1.0)
        ok, retry = bucket.take(now + 1.0)  # one token refilled
        assert ok

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert bucket.take(10.0)[0]
        ok, retry = bucket.take(1000.0)
        assert not ok and retry > 0


class TestRateLimiter:
    def test_disabled_at_zero_rate(self):
        limiter = RateLimiter(rate=0.0)
        assert all(limiter.admit("t")[0] for _ in range(100))

    def test_tenants_are_isolated(self):
        limiter = RateLimiter(rate=0.001, burst=1.0)
        assert limiter.admit("a")[0]
        assert not limiter.admit("a")[0]  # a's bucket is empty…
        assert limiter.admit("b")[0]      # …but b's is untouched


class TestRetryAfterForQueue:
    def test_floor_and_estimate(self):
        assert retry_after_for_queue(0, 2, 0.0) == 1
        assert retry_after_for_queue(8, 2, 3.0) == 12  # 8*3/2
        assert retry_after_for_queue(1, 4, 0.01) == 1  # floored


# -- breaker unit --------------------------------------------------------------


class TestCircuitBreaker:
    def test_consecutive_failures_trip(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0)
        for _ in range(2):
            breaker.record("failed", now=0.0)
        breaker.record("completed", now=0.0)  # resets the streak
        assert breaker.state == CLOSED
        for _ in range(3):
            breaker.record("failed", now=0.0)
        assert breaker.state == OPEN

    def test_degraded_outcomes_do_not_trip(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        for outcome in ("timed_out", "skipped", "timed_out", "skipped"):
            breaker.record(outcome, now=0.0)
        assert breaker.state == CLOSED

    def test_open_rejects_until_cooldown_then_single_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record("failed", now=0.0)
        assert breaker.state == OPEN
        allowed, retry = breaker.allow(now=1.0)
        assert not allowed and retry == pytest.approx(4.0)
        # Cooldown expired: half-open admits exactly one probe.
        assert breaker.allow(now=6.0) == (True, 0.0)
        assert breaker.state == HALF_OPEN
        assert not breaker.allow(now=6.0)[0]

    def test_probe_outcome_closes_or_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0)
        breaker.record("failed", now=0.0)
        assert breaker.allow(now=6.0)[0]
        breaker.record("completed", now=6.5)
        assert breaker.state == CLOSED

        breaker.record("failed", now=7.0)
        assert breaker.allow(now=13.0)[0]
        breaker.record("failed", now=13.5)
        assert breaker.state == OPEN


# -- job spec validation -------------------------------------------------------


class TestResolveSpec:
    def test_prefix_resolution(self):
        spec = resolve_spec({"kernel": "trans", "variant": "na", "device": "mango"})
        assert spec.kernel == "transpose"
        assert spec.variant == "Naive"
        assert spec.device == "mango_pi_d1"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(JobValidationError):
            resolve_spec({"kernel": "fft", "variant": "Naive", "device": "mango"})

    def test_unknown_field_rejected(self):
        with pytest.raises(JobValidationError, match="unknown fields"):
            resolve_spec(dict(SPEC, bogus=1))

    def test_bad_scale_and_sizes_rejected(self):
        with pytest.raises(JobValidationError):
            resolve_spec(dict(SPEC, scale=0))
        with pytest.raises(JobValidationError):
            resolve_spec(dict(SPEC, n=-4))
        with pytest.raises(JobValidationError):
            resolve_spec(dict(SPEC, deadline_s=0))

    def test_cache_key_is_canonical_and_stable(self):
        a = resolve_spec(dict(SPEC))
        b = resolve_spec({"kernel": "trans", "variant": "naive",
                          "device": "mango", "n": 64})
        assert a.cache_key() == b.cache_key()
        assert a.cache_key().startswith("v2:")


# -- executor ------------------------------------------------------------------


class TestExecuteJob:
    def test_completes_with_record(self, tmp_path):
        spec = resolve_spec(dict(SPEC))
        result = execute_job(spec.task(str(tmp_path / "cache.json")))
        assert result["outcome"] == "completed"
        assert result["record"]["seconds"] > 0
        assert result["source"] == "simulated"

    def test_never_raises_on_garbage_task(self):
        result = execute_job({"kernel": "transpose"})  # missing fields
        assert result["outcome"] == "failed"
        assert "executor crash" in result["reason"]

    def test_deadline_maps_to_timed_out(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:0.4")
        spec = resolve_spec(dict(SPEC, deadline_s=0.05))
        result = execute_job(spec.task(str(tmp_path / "cache.json")))
        assert result["outcome"] == "timed_out"


# -- server integration --------------------------------------------------------


class TestServerBasics:
    def test_submit_completes_and_caches(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            done = client.submit_and_wait(SPEC, timeout_s=30)
            assert done["outcome"] == "completed"
            assert done["record"]["seconds"] > 0
            assert done["source"] == "simulated"
            # Same key again: served from cache, no re-simulation.
            again = client.submit_and_wait(SPEC, timeout_s=30)
            assert again["outcome"] == "completed"
            assert again["source"] in ("memory-cache", "disk-cache")

    def test_health_ready_metrics_endpoints(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            assert client.healthz()["status"] == "ok"
            ready, body = client.readyz()
            assert ready and body["breaker"] == "closed"
            client.submit_and_wait(SPEC, timeout_s=30)
            exposition = client.metrics()
            assert "# TYPE repro_serve_submissions_total counter" in exposition
            assert 'repro_serve_jobs_total{outcome="completed"} 1' in exposition
            assert exposition.rstrip().endswith("# EOF")

    def test_bad_request_is_structured_400(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit({"kernel": "fft", "variant": "x",
                                          "device": "mango"})
            assert status == 400
            assert body["outcome"] == "rejected"
            assert body["reason"] == "bad_request"

    def test_unknown_endpoint_and_job_are_structured(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body, _ = client.request("GET", "/nope")
            assert status == 404 and body["outcome"] == "rejected"
            status, body, _ = client.request("GET", "/jobs/j999999")
            assert status == 404 and body["outcome"] == "rejected"


class TestCoalescing:
    def test_duplicate_submissions_execute_once(self, tmp_path, monkeypatch):
        """Concurrent duplicates of one key coalesce onto one in-flight
        job and the journal shows exactly one simulated execution."""
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:0.6")
        cache_path = str(tmp_path / "serve_cache.json")
        config = _config(tmp_path, cache_path=cache_path)
        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, first = client.submit(SPEC)
            assert status == 202
            # While the first job hangs in simulate, duplicates coalesce.
            dup_ids = []
            for _ in range(4):
                dup_status, dup = client.submit(dict(SPEC))
                assert dup_status == 200
                dup_ids.append(dup["job_id"])
            assert set(dup_ids) == {first["job_id"]}
            done = client.wait(first["job_id"], timeout_s=30)
            assert done["outcome"] == "completed"
            assert done["submissions"] == 5
            exposition = client.metrics()
            assert "repro_serve_coalesced_total 4" in exposition

        entries = [
            e for e in read_journal(default_journal_path(cache_path))
            if e.key == done["key"] and e.source == "simulated"
        ]
        assert len(entries) == 1


class TestBackpressure:
    def test_queue_overflow_is_429_with_retry_after(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:1.0")
        config = _config(tmp_path, jobs=1, queue_max=1, drain_timeout_s=8.0)
        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, first = client.submit(SPEC)
            assert status == 202
            # Wait until the first job occupies the worker…
            deadline = time.monotonic() + 5.0
            while client.job(first["job_id"])["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.02)
            # …then one distinct job fills the queue and the next overflows.
            status, _ = client.submit(dict(SPEC, variant="Blocking"))
            assert status == 202
            status, body, headers = client.request(
                "POST", "/jobs", dict(SPEC, variant="Dynamic")
            )
            assert status == 429
            assert body["reason"] == "queue_full"
            assert int(headers["retry-after"]) >= 1

    def test_rate_limit_is_429_per_tenant(self, tmp_path):
        config = _config(tmp_path, rate=0.001, burst=1.0)
        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, _ = client.submit(dict(SPEC, tenant="alice"))
            assert status == 202
            status, body, headers = client.request(
                "POST", "/jobs", dict(SPEC, variant="Blocking", tenant="alice")
            )
            assert status == 429
            assert body["reason"] == "rate_limited"
            assert int(headers["retry-after"]) >= 1
            # A different tenant is unaffected.
            status, _ = client.submit(dict(SPEC, variant="Blocking",
                                           tenant="bob"))
            assert status == 202


class TestBreakerIntegration:
    def test_breaker_opens_sheds_load_and_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "1")
        monkeypatch.setenv("REPRO_FAULTS", "sim_flaky:99")
        config = _config(tmp_path, breaker_threshold=2, breaker_cooldown_s=0.3)
        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            for variant in ("Naive", "Blocking"):
                done = client.submit_and_wait(dict(SPEC, variant=variant),
                                              timeout_s=30)
                assert done["outcome"] == "failed"
            # Two consecutive failures tripped the breaker: load is shed.
            status, body, headers = client.request(
                "POST", "/jobs", dict(SPEC, variant="Dynamic")
            )
            assert status == 503
            assert body["reason"] == "breaker_open"
            assert int(headers["retry-after"]) >= 1
            ready, ready_body = client.readyz()
            assert not ready and ready_body["breaker"] == "open"
            assert client.healthz()["status"] == "ok"  # liveness unaffected

            # Heal the fault, wait out the cooldown: the probe job closes it.
            monkeypatch.delenv("REPRO_FAULTS")
            clear_faults()
            time.sleep(0.35)
            done = client.submit_and_wait(dict(SPEC, variant="Dynamic"),
                                          timeout_s=30)
            assert done["outcome"] == "completed"
            assert client.readyz()[0]


class TestDrain:
    def test_drain_rejects_new_work_and_resolves_queued(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:1.0")
        config = _config(tmp_path, jobs=1, queue_max=4, drain_timeout_s=0.2)
        handle = ServerHandle(config).start()
        client = ServeClient(port=handle.port, timeout_s=15)
        status, running = client.submit(SPEC)
        assert status == 202
        status, queued = client.submit(dict(SPEC, variant="Blocking"))
        assert status == 202

        assert handle._loop is not None
        handle._loop.call_soon_threadsafe(handle.server.begin_drain)
        time.sleep(0.05)
        status, body = client.submit(dict(SPEC, variant="Dynamic"))
        assert status == 503 and body["reason"] == "draining"

        handle.stop()
        # Every admitted job resolved to a structured terminal outcome.
        for job in (running, queued):
            stored = handle.server._jobs[job["job_id"]]
            assert stored.terminal
            assert stored.outcome in TERMINAL_OUTCOMES
        assert handle.server._jobs[queued["job_id"]].outcome == "rejected"


class TestSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """A real ``repro serve`` process completes in-flight work and
        exits 0 on SIGTERM (the CI smoke job's core assertion)."""
        import os
        import signal
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_CACHE"] = str(tmp_path / "cache.json")
        env["REPRO_PMU"] = "off"
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "sys.exit(main(['serve', '--port', '0', '--drain-timeout', '10']))"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on http://" in line, line
            port = int(line.strip().rsplit(":", 1)[1])
            client = ServeClient(port=port, timeout_s=15)
            assert client.healthz()["status"] == "ok"
            done = client.submit_and_wait(SPEC, timeout_s=60)
            assert done["outcome"] == "completed"
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestChaosSoak:
    def test_concurrent_clients_under_faults_all_resolve(self, tmp_path, monkeypatch):
        """≥8 concurrent clients vs a 2-slot server under transient
        faults: every submission resolves to a structured outcome, no
        unhandled 500s, endpoints stay live."""
        monkeypatch.setenv("REPRO_FAULTS", "sim_flaky:1")  # fail once per key
        monkeypatch.setenv("REPRO_RETRIES", "3")
        config = _config(tmp_path, jobs=2, queue_max=32, drain_timeout_s=30.0)
        variants = ["Naive", "Parallel", "Blocking", "Dynamic"]
        results: list = []
        errors: list = []

        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=30)

            def hammer(worker: int) -> None:
                try:
                    spec = dict(SPEC, variant=variants[worker % len(variants)])
                    outcome = client.submit_and_wait(spec, timeout_s=60)
                    results.append(outcome)
                    if worker % 3 == 0:  # sprinkle invalid and probe traffic
                        status, body = client.submit({"kernel": "bogus",
                                                      "variant": "x",
                                                      "device": "mango"})
                        assert status == 400 and body["outcome"] == "rejected"
                        client.healthz()
                except Exception as exc:  # pragma: no cover - failure detail
                    errors.append((worker, repr(exc)))

            threads = [threading.Thread(target=hammer, args=(w,))
                       for w in range(9)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)

            assert not errors, errors
            assert len(results) == 9
            for outcome in results:
                assert outcome["outcome"] in TERMINAL_OUTCOMES
                # sim_flaky:1 with 3 attempts: every job degrades to success.
                assert outcome["outcome"] == "completed"
            exposition = client.metrics()
            assert "repro_serve_submissions_total" in exposition
            assert client.healthz()["status"] == "ok"


class TestTracingIntegration:
    def test_job_trace_is_one_connected_tree(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            done = client.wait(body["job_id"], timeout_s=30)
            assert done["outcome"] == "completed"
            assert len(done["trace_id"]) == 32
            trace = client.trace(body["job_id"])
            assert trace["trace_id"] == done["trace_id"]
            assert trace["complete"]
            assert trace["roots"] == 1
            names = {s["name"] for s in trace["spans"]}
            assert {"serve.job", "serve.queue_wait", "serve.execute"} <= names
            assert "simulate" in names  # the worker side joined the tree
            assert len(trace["tree"]) == 1

    def test_worker_process_spans_join_the_tree(self, tmp_path):
        """--jobs 2: spans recorded inside the spawned pool worker re-root
        under the server's execute span — one tree across two pids."""
        with ServerHandle(_config(tmp_path, jobs=2)) as handle:
            client = ServeClient(port=handle.port, timeout_s=30)
            status, body = client.submit(SPEC)
            assert status == 202
            done = client.wait(body["job_id"], timeout_s=60)
            assert done["outcome"] == "completed"
            trace = client.trace(body["job_id"])
            assert trace["roots"] == 1
            pids = {s["pid"] for s in trace["spans"]}
            assert len(pids) >= 2  # server track + worker track
            # Every span except the root links to a parent in the set.
            by_id = {s["span_id"] for s in trace["spans"]}
            orphans = [
                s for s in trace["spans"]
                if s["parent_id"] and s["parent_id"] not in by_id
            ]
            assert orphans == []

    def test_traceparent_header_continues_client_trace(self, tmp_path):
        client_trace = "ab" * 16
        client_span = "cd" * 8
        header = f"00-{client_trace}-{client_span}-01"
        with ServerHandle(_config(tmp_path)) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=15)
            try:
                conn.request(
                    "POST", "/jobs", body=json.dumps(SPEC),
                    headers={"Content-Type": "application/json",
                             "traceparent": header},
                )
                body = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            client = ServeClient(port=handle.port, timeout_s=15)
            done = client.wait(body["job_id"], timeout_s=30)
            assert done["trace_id"] == client_trace
            trace = client.trace(body["job_id"])
            # The server's root span parents under the client's span; the
            # tree still assembles to one root (the client span is remote).
            assert trace["roots"] == 1
            root = trace["tree"][0]
            assert root["name"] == "serve.job"
            assert root["parent_id"] == client_span

    def test_malformed_traceparent_header_minted_fresh(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=15)
            try:
                conn.request(
                    "POST", "/jobs", body=json.dumps(SPEC),
                    headers={"Content-Type": "application/json",
                             "traceparent": "00-" + "0" * 32 + "-" + "1" * 16 + "-01"},
                )
                body = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            client = ServeClient(port=handle.port, timeout_s=15)
            done = client.wait(body["job_id"], timeout_s=30)
            # All-zero trace id is invalid; the server minted its own.
            assert len(done["trace_id"]) == 32
            assert done["trace_id"] != "0" * 32

    def test_trace_endpoint_404s(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body, _ = client.request("GET", "/jobs/j999999/trace")
            assert status == 404 and body["outcome"] == "rejected"
        with ServerHandle(_config(tmp_path, trace=False)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            client.wait(body["job_id"], timeout_s=30)
            status, payload, _ = client.request(
                "GET", f"/jobs/{body['job_id']}/trace"
            )
            assert status == 404
            assert "disabled" in payload["reason"]


class TestSSEStreaming:
    def test_replays_full_event_sequence(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            client.wait(body["job_id"], timeout_s=30)
            events = [e for e in client.stream_events(body["job_id"])
                      if "comment" not in e]
            names = [e["event"] for e in events]
            assert names[0] == "admitted"
            assert "queued" in names and "started" in names
            assert names[-1] == "outcome"
            ids = [e["id"] for e in events]
            assert ids == sorted(ids) and len(set(ids)) == len(ids)
            outcome = events[-1]
            assert outcome["outcome"] == "completed"
            assert outcome["trace"] == client.job(body["job_id"])["trace_id"]

    def test_heartbeats_keep_slow_streams_alive(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:0.8")
        config = _config(tmp_path, sse_heartbeat_s=0.2)
        with ServerHandle(config) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            frames = list(client.stream_events(body["job_id"], timeout_s=30))
            heartbeats = [f for f in frames if f.get("comment") == "heartbeat"]
            assert heartbeats  # idle gaps were filled
            assert frames[-1].get("event") == "outcome"

    def test_disconnect_then_resume_via_last_event_id(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:0.6")
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            # Read the first event, then drop the connection mid-stream.
            first = None
            for frame in client.stream_events(body["job_id"], timeout_s=30):
                if "comment" not in frame:
                    first = frame
                    break
            assert first is not None and first["event"] == "admitted"
            # Resume: already-seen ids are not replayed.
            resumed = [
                f for f in client.stream_events(
                    body["job_id"], last_event_id=first["id"], timeout_s=30)
                if "comment" not in f
            ]
            assert resumed, "resume replayed nothing"
            assert all(f["id"] > first["id"] for f in resumed)
            assert resumed[-1]["event"] == "outcome"

    def test_resume_via_query_parameter(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            client.wait(body["job_id"], timeout_s=30)
            all_events = [e for e in client.stream_events(body["job_id"])
                          if "comment" not in e]
            conn = http.client.HTTPConnection("127.0.0.1", handle.port,
                                              timeout=15)
            try:
                conn.request(
                    "GET",
                    f"/jobs/{body['job_id']}/events?last_event_id={all_events[0]['id']}",
                    headers={"Accept": "text/event-stream"},
                )
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Content-Type").startswith(
                    "text/event-stream")
                raw = response.read().decode("utf-8")
            finally:
                conn.close()
            ids = [int(m) for m in re.findall(r"^id: (\d+)$", raw, re.M)]
            assert ids and all(i > all_events[0]["id"] for i in ids)
            assert "event: outcome" in raw

    def test_unknown_job_stream_is_404(self, tmp_path):
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            with pytest.raises(ServeError, match="404"):
                list(client.stream_events("j999999"))


_OM_LABELS = r'\{[a-zA-Z_]\w*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_]\w*="(?:[^"\\]|\\.)*")*\}'
_OM_NUMBER = r"[+-]?(?:[0-9]*\.?[0-9]+(?:e[+-]?[0-9]+)?|Inf|NaN)"
_OM_META_RE = re.compile(
    r"^# (?:TYPE [a-zA-Z_:][\w:]* (?:counter|gauge|histogram|info|unknown)"
    r"|UNIT [a-zA-Z_:][\w:]* [a-z]+"
    r"|HELP [a-zA-Z_:][\w:]* \S.*)$"
)
_OM_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][\w:]*(?:%s)? %s(?: # %s %s)?$"
    % (_OM_LABELS, _OM_NUMBER, _OM_LABELS, _OM_NUMBER)
)


class TestOpenMetricsCompliance:
    def _exposition(self, tmp_path) -> str:
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            done = client.submit_and_wait(SPEC, timeout_s=30)
            assert done["outcome"] == "completed"
            return client.metrics()

    def test_every_line_matches_the_grammar(self, tmp_path):
        text = self._exposition(tmp_path)
        assert text.endswith("# EOF\n")
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert lines.count("# EOF") == 1  # single terminator, at the end
        for line in lines[:-1]:
            assert line, "blank line inside exposition"
            if line.startswith("#"):
                assert _OM_META_RE.match(line), line
            else:
                assert _OM_SAMPLE_RE.match(line), line

    def test_duration_families_declare_a_seconds_unit(self, tmp_path):
        text = self._exposition(tmp_path)
        assert "# UNIT repro_serve_job_seconds_total seconds" in text
        assert "# UNIT repro_serve_request_seconds seconds" in text
        assert "# UNIT repro_serve_job_phase_seconds seconds" in text
        # Metadata order per family: TYPE, then UNIT, then HELP.
        block = re.search(
            r"^# TYPE repro_serve_request_seconds histogram\n"
            r"# UNIT repro_serve_request_seconds seconds\n"
            r"# HELP repro_serve_request_seconds .+$",
            text, re.M,
        )
        assert block is not None

    def test_histograms_are_cumulative_with_exemplars(self, tmp_path):
        samples = parse_exposition(self._exposition(tmp_path))
        buckets: dict = {}
        counts: dict = {}
        for sample in samples:
            labels = dict(sample["labels"])
            if sample["name"] == "repro_serve_job_phase_seconds_bucket":
                le = labels.pop("le")
                bound = float("inf") if le == "+Inf" else float(le)
                key = tuple(sorted(labels.items()))
                buckets.setdefault(key, []).append((bound, sample["value"]))
            elif sample["name"] == "repro_serve_job_phase_seconds_count":
                counts[tuple(sorted(labels.items()))] = sample["value"]
        assert buckets and counts
        for key, series in buckets.items():
            series.sort()
            values = [count for _bound, count in series]
            assert values == sorted(values), f"non-cumulative buckets: {key}"
            assert series[-1][0] == float("inf")
            assert series[-1][1] == counts[key]  # +Inf bucket == _count
        exemplar_traces = [
            sample["exemplar"]["labels"]["trace_id"]
            for sample in samples
            if sample.get("exemplar")
            and "trace_id" in sample["exemplar"]["labels"]
        ]
        assert exemplar_traces
        assert all(re.fullmatch(r"[0-9a-f]{32}", t) for t in exemplar_traces)


class TestLongPoll:
    def test_wait_times_out_with_last_state(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "sim_hang:1.5")
        with ServerHandle(_config(tmp_path)) as handle:
            client = ServeClient(port=handle.port, timeout_s=15)
            status, body = client.submit(SPEC)
            assert status == 202
            with pytest.raises(ServeTimeout) as exc:
                client.wait(body["job_id"], timeout_s=0.3, poll_wait_s=0.1)
            assert exc.value.last is not None
            assert exc.value.last["state"] in ("queued", "running")
