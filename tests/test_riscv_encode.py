"""Encoder/decoder round-trip tests for the RISC-V subset."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError, EncodingError
from repro.riscv import Instruction, decode, encode
from repro.riscv.isa import SPECS

regs = st.integers(0, 31)
imm12 = st.integers(-2048, 2047)


def _roundtrip(insn: Instruction) -> None:
    word = encode(insn)
    assert 0 <= word < 2**32
    assert decode(word) == insn


class TestRoundTrips:
    @given(rd=regs, rs1=regs, rs2=regs)
    def test_r_type(self, rd, rs1, rs2):
        for m in ("add", "sub", "mul", "and", "sltu", "divu", "remw"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, rs2=rs2))

    @given(rd=regs, rs1=regs, imm=imm12)
    def test_i_type(self, rd, rs1, imm):
        for m in ("addi", "andi", "ld", "lw", "lbu", "jalr", "fld", "flw"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, imm=imm))

    @given(rs1=regs, rs2=regs, imm=imm12)
    def test_store(self, rs1, rs2, imm):
        for m in ("sd", "sw", "sb", "fsd", "fsw"):
            _roundtrip(Instruction(m, rs1=rs1, rs2=rs2, imm=imm))

    @given(rd=regs, rs1=regs, shamt=st.integers(0, 63))
    def test_shifts(self, rd, rs1, shamt):
        for m in ("slli", "srli", "srai"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, imm=shamt))

    @given(rs1=regs, rs2=regs, imm=st.integers(-2048, 2047).map(lambda v: v * 2))
    def test_branches(self, rs1, rs2, imm):
        for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            _roundtrip(Instruction(m, rs1=rs1, rs2=rs2, imm=imm))

    @given(rd=regs, imm=st.integers(0, 0xFFFFF))
    def test_u_type(self, rd, imm):
        for m in ("lui", "auipc"):
            _roundtrip(Instruction(m, rd=rd, imm=imm))

    @given(rd=regs, imm=st.integers(-(2**19), 2**19 - 1).map(lambda v: v * 2))
    def test_jal(self, rd, imm):
        _roundtrip(Instruction("jal", rd=rd, imm=imm))

    @given(rd=regs, rs1=regs, rs2=regs)
    def test_fp_arith(self, rd, rs1, rs2):
        for m in ("fadd.d", "fmul.s", "fdiv.d", "fmin.d", "feq.d", "fsgnj.d"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, rs2=rs2))

    @given(rd=regs, rs1=regs, rs2=regs, rs3=regs)
    def test_fma(self, rd, rs1, rs2, rs3):
        for m in ("fmadd.d", "fmsub.s", "fnmadd.d"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3))

    @given(rd=regs, rs1=regs)
    def test_conversions(self, rd, rs1):
        for m in ("fcvt.d.l", "fcvt.l.d", "fmv.x.d", "fmv.d.x", "fcvt.s.d"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1))

    @given(rd=regs, rs1=regs, vtypei=st.integers(0, 0x7FF))
    def test_vsetvli(self, rd, rs1, vtypei):
        _roundtrip(Instruction("vsetvli", rd=rd, rs1=rs1, vtypei=vtypei))

    @given(rd=regs, rs1=regs)
    def test_vector_mem(self, rd, rs1):
        for m in ("vle64.v", "vse64.v", "vle32.v", "vse32.v"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1))

    @given(rd=regs, rs1=regs, rs2=regs)
    def test_vector_arith(self, rd, rs1, rs2):
        for m in ("vfadd.vv", "vfmul.vv", "vfmacc.vv", "vfmacc.vf"):
            _roundtrip(Instruction(m, rd=rd, rs1=rs1, rs2=rs2))

    def test_system(self):
        _roundtrip(Instruction("ecall"))
        _roundtrip(Instruction("ebreak"))


class TestValidation:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodingError):
            encode(Instruction("vadd.magic"))

    def test_imm_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("addi", rd=1, rs1=1, imm=5000))

    def test_misaligned_branch(self):
        with pytest.raises(EncodingError):
            encode(Instruction("beq", rs1=0, rs2=0, imm=3))

    def test_register_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(Instruction("add", rd=32, rs1=0, rs2=0))

    def test_decode_garbage(self):
        with pytest.raises(DecodingError):
            decode(0xFFFFFFFF)
        with pytest.raises(DecodingError):
            decode(0x00000000)

    def test_all_specs_have_smoke_encoding(self):
        """Every mnemonic in the table encodes and decodes back, using only
        the fields its format actually encodes."""
        for mnemonic, spec in SPECS.items():
            if spec.fmt in ("R", "VARITH", "VARITH-F"):
                insn = Instruction(mnemonic, rd=1, rs1=2, rs2=3)
            elif spec.fmt in ("I", "LOAD", "FLOAD", "I-shift"):
                insn = Instruction(mnemonic, rd=1, rs1=2, imm=4)
            elif spec.fmt in ("STORE", "FSTORE"):
                insn = Instruction(mnemonic, rs1=2, rs2=3, imm=4)
            elif spec.fmt == "B":
                insn = Instruction(mnemonic, rs1=2, rs2=3, imm=4)
            elif spec.fmt == "U":
                insn = Instruction(mnemonic, rd=1, imm=10)
            elif spec.fmt == "J":
                insn = Instruction(mnemonic, rd=1, imm=4)
            elif spec.fmt == "R4":
                insn = Instruction(mnemonic, rd=1, rs1=2, rs2=3, rs3=4)
            elif spec.fmt == "SYS":
                insn = Instruction(mnemonic)
            elif spec.fmt == "VSETVLI":
                insn = Instruction(mnemonic, rd=1, rs1=2, vtypei=0xC3)
            elif spec.fmt in ("VLOAD", "VSTORE"):
                insn = Instruction(mnemonic, rd=1, rs1=2)
            elif spec.fmt == "R-fp":
                if spec.rs2_field is not None:
                    insn = Instruction(mnemonic, rd=1, rs1=2)
                else:
                    insn = Instruction(mnemonic, rd=1, rs1=2, rs2=3)
            else:  # pragma: no cover - table exhaustiveness guard
                raise AssertionError(f"untested format {spec.fmt}")
            assert decode(encode(insn)) == insn, mnemonic
