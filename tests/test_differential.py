"""Differential testing over randomly generated affine programs.

Hypothesis generates small loop-nest programs (random nests, bounds,
subscripts and expressions, in-bounds by construction) and cross-checks
the independent implementations against each other:

* the scalar interpreter vs the RISC-V code generator + emulator
  (bit-exact f64);
* the symbolic trace generator's element footprint vs an exact
  enumeration of the program's accesses;
* static operation counts vs counts accumulated while tracing.

Any divergence between these stacks is a real bug in one of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import count_program
from repro.exec import TraceGenerator, run_program
from repro.ir import Affine, Block, DType, For, Program, Store
from repro.ir.expr import BinOp, Const, Load
from repro.ir.program import Array, MemoryLayout
from repro.ir.validate import validate_program

DIM = 6  # every array axis and loop range is [0, DIM)


@st.composite
def programs(draw):
    """A random valid affine program over f64 arrays."""
    n_arrays = draw(st.integers(1, 3))
    arrays = []
    for index in range(n_arrays):
        rank = draw(st.integers(1, 2))
        arrays.append(Array(f"arr{index}", DType.F64, (DIM,) * rank))

    depth = draw(st.integers(1, 3))
    loop_vars = [f"v{k}" for k in range(depth)]

    def subscript() -> Affine:
        kind = draw(st.integers(0, 2))
        if kind == 0:
            return Affine(draw(st.integers(0, DIM - 1)))
        var = draw(st.sampled_from(loop_vars))
        if kind == 1:
            return Affine.var(var)
        return Affine(DIM - 1) - Affine.var(var)  # reversed walk

    def expression(budget: int):
        if budget <= 0 or draw(st.booleans()):
            if draw(st.booleans()):
                array = draw(st.sampled_from(arrays))
                return Load(array, [subscript() for _ in array.shape])
            return Const(float(draw(st.integers(-4, 4))))
        op = draw(st.sampled_from(["+", "-", "*"]))
        return BinOp(op, expression(budget - 1), expression(budget - 1))

    stores = []
    for _ in range(draw(st.integers(1, 2))):
        target = draw(st.sampled_from(arrays))
        stores.append(
            Store(
                target,
                [subscript() for _ in target.shape],
                expression(draw(st.integers(0, 2))),
                accumulate=draw(st.booleans()),
            )
        )

    body = Block(stores)
    for var in reversed(loop_vars):
        body = Block([For(var, 0, DIM, body)])
    return Program("random_program", body, arrays=arrays)


def _inputs(program, seed=0):
    rng = np.random.default_rng(seed)
    return {
        arr.name: np.round(rng.uniform(-2, 2, arr.shape), 3) for arr in program.arrays
    }


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_interpreter_matches_riscv_emulator(program):
    """Two entirely independent executions must agree bit-for-bit."""
    from repro.riscv import compile_and_run

    validate_program(program)
    inputs = _inputs(program)
    expected = run_program(program, inputs)
    got, _ = compile_and_run(program, inputs)
    for arr in program.arrays:
        assert np.array_equal(got[arr.name], expected[arr.name]), arr.name


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_trace_footprint_matches_exact_enumeration(program):
    """Segments must touch exactly the elements the program accesses."""
    validate_program(program)
    layout = MemoryLayout(program)
    generator = TraceGenerator(program, num_cores=1, layout=layout)
    traced = set()
    for seg in generator.core_stream(0):
        for k in range(seg.count):
            traced.add((seg.base + k * seg.stride, seg.is_write))

    expected = set()

    def walk(stmt, env):
        from repro.ir.expr import loads_in
        from repro.ir.stmt import Block as B, For as F, Store as S

        if isinstance(stmt, B):
            for child in stmt.stmts:
                walk(child, env)
        elif isinstance(stmt, F):
            for value in stmt.iter_values(env):
                env[stmt.var] = value
                walk(stmt.body, env)
            env.pop(stmt.var, None)
        elif isinstance(stmt, S):
            for load in loads_in(stmt.value):
                offset = load.array.linearize(load.indices).evaluate(env)
                expected.add(
                    (layout.address_of(load.array) + offset * 8, False)
                )
            offset = stmt.array.linearize(stmt.indices).evaluate(env)
            base = layout.address_of(stmt.array) + offset * 8
            if stmt.accumulate:
                expected.add((base, False))
            expected.add((base, True))

    walk(program.body, {})
    assert traced == expected


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs())
def test_traced_counts_match_static_counts(program):
    """The tracer's running op counts must equal the closed-form analysis."""
    validate_program(program)
    generator = TraceGenerator(program, num_cores=1)
    for _ in generator.core_stream(0):
        pass
    traced = generator.work[0].total
    static = count_program(program)
    assert traced.loads == static.loads
    assert traced.stores == static.stores
    assert traced.flops == static.flops
    assert traced.bytes_loaded == static.bytes_loaded
    assert traced.bytes_stored == static.bytes_stored


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(programs(), st.integers(2, 4))
def test_parallel_cores_cover_serial_footprint(program, cores):
    """However the scheduler splits a parallelized outermost loop, the
    union of all cores' element footprints equals the serial footprint."""
    from repro.ir.stmt import For

    outer = program.body.stmts[0]
    assert isinstance(outer, For)
    parallel = program.with_body(
        Block([outer.with_(parallel=True, schedule="dynamic")])
    )
    # One shared layout (from the original, whose array list is a superset)
    # so both runs resolve identical addresses.
    layout = MemoryLayout(program, num_threads=cores)

    def footprint(prog, n_cores):
        generator = TraceGenerator(prog, num_cores=n_cores, layout=layout)
        touched = set()
        for core in range(n_cores):
            for seg in generator.core_stream(core):
                for k in range(seg.count):
                    touched.add((seg.base + k * seg.stride, seg.is_write))
        return touched

    assert footprint(parallel, cores) == footprint(program, 1)
