"""The ``repro lint`` CLI subcommand (the ISSUE's acceptance scenarios)."""

import json

import pytest

from repro import cli

# Small sizes keep the symbolic + oracle certification in the kernel
# builders fast; one device keeps the locality checkers deterministic.
FAST = ["--n", "64", "--device", "xeon_4310t"]


def test_naive_transpose_strict_fails_with_stride(capsys):
    assert cli.main(["lint", "transpose", "Naive", "--strict"] + FAST) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out and "stride" in out


def test_naive_transpose_not_strict_exits_zero(capsys):
    assert cli.main(["lint", "transpose", "Naive"] + FAST) == 0
    assert "RPR003" in capsys.readouterr().out


def test_blocked_transpose_clean(capsys):
    assert cli.main(["lint", "transpose", "Blocking", "--strict"] + FAST) == 0
    assert "clean" in capsys.readouterr().out


def test_oversized_tile_fails_tile_fit(capsys):
    argv = ["lint", "transpose", "Blocking", "--strict", "--n", "512",
            "--block", "128", "--device", "mango_pi_d1"]
    assert cli.main(argv) == 1
    assert "RPR004" in capsys.readouterr().out


def test_illegal_scan_parallelization_fails_with_race(capsys):
    assert cli.main(["lint", "scan", "Parallel", "--strict"] + FAST) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR005" in out


def test_waive_flag_moves_code_aside(capsys):
    argv = ["lint", "transpose", "Naive", "--strict",
            "--waive", "RPR003=measured baseline"] + FAST
    assert cli.main(argv) == 0
    out = capsys.readouterr().out
    assert "waived RPR003" in out and "measured baseline" in out


def test_figures_gate_passes_with_committed_waivers(capsys):
    assert cli.main(["lint", "--figures", "--strict", "--device", "xeon_4310t"]) == 0
    out = capsys.readouterr().out
    assert "transpose/Manual_blocking: clean" in out
    assert "waived" in out  # Naive's stride rides on an explicit waiver
    # Figure-harness sizes push the enumeration cross-check over budget:
    # that surfaces as a skipped-oracle note, never a gate failure.
    assert "RPR006" in out


def test_json_output_parses(capsys):
    assert cli.main(["lint", "scan", "Parallel", "--json"] + FAST) == 0
    doc = json.loads(capsys.readouterr().out)
    codes = [d["code"] for d in doc["diagnostics"]]
    assert "RPR001" in codes and "RPR005" in codes
    assert doc["counts"]["error"] == 1


def test_sarif_output_parses(tmp_path, capsys):
    path = tmp_path / "lint.sarif"
    argv = ["lint", "transpose", "Naive", "--sarif", "-o", str(path)] + FAST
    assert cli.main(argv) == 0
    capsys.readouterr()
    doc = json.loads(path.read_text())
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert results and all(r["ruleId"] == "RPR003" for r in results)
    rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert rules == {"RPR003"}


def test_unknown_kernel_is_usage_error(capsys):
    assert cli.main(["lint", "nosuch", "Naive"]) == 2


def test_kernel_without_variant_is_usage_error():
    with pytest.raises(SystemExit):
        cli.main(["lint", "transpose"])


def test_cross_device_diagnostics_deduplicated(capsys):
    # Race/stride findings are device-independent: linting over the whole
    # catalog must not repeat them per device.
    assert cli.main(["lint", "transpose", "Naive", "--n", "64"]) == 0
    out = capsys.readouterr().out
    assert out.count("RPR003") == 2  # strided read + strided write, once each
