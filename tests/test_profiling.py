"""Profiling package: tracer, counter registry, attribution, baselines."""

import json

import pytest

from repro.devices import DEVICE_KEYS, get_device
from repro.kernels import transpose
from repro.profiling import Tracer, counter_set, diff_counters, per_core_counter_sets, tracer
from repro.profiling.baseline import (
    BASELINE_SCHEMA,
    check_report,
    load_baselines,
    save_baseline,
)
from repro.profiling.profile import ProfileError, ProfileReport, profile_run
from repro.simulate import simulate

#: fig2 / fig6 kernel suites, at test-sized inputs (full figure sizes take
#: tens of seconds per cell; the attribution math is size-independent).
FIG_GRID = [("transpose", v) for v in transpose.VARIANT_ORDER] + [
    ("blur", v) for v in ("Naive", "Unit-stride", "1D_kernels", "Memory", "Parallel")
]

CHROME_REQUIRED_KEYS = {"name", "ph", "ts", "dur", "pid", "tid"}


def _small_result(device_key="mango_pi_d1", n=64):
    device = get_device(device_key)
    return simulate(transpose.build("Naive", n, block=16), device, check_capacity=False)


# -- tracer --------------------------------------------------------------------


class TestTracer:
    def test_disabled_by_default(self):
        assert tracer.current() is None
        # No tracer installed: span() is a shared no-op context manager.
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("noop"):
            pass
        tracer.instant("nothing-happens")

    def test_install_and_restore(self):
        assert tracer.current() is None
        with tracer.install() as outer:
            assert tracer.current() is outer
            inner_tracer = Tracer()
            with tracer.install(inner_tracer):
                assert tracer.current() is inner_tracer
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_nested_spans_record_depth_and_args(self):
        t = Tracer()
        with t.span("outer", cat="test", key="v"):
            with t.span("inner"):
                pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["outer"].args == {"key": "v"}
        assert by_name["outer"].dur_us >= by_name["inner"].dur_us

    def test_chrome_events_schema(self, tmp_path):
        t = Tracer()
        with t.span("parent", cat="phase"):
            with t.span("child"):
                pass
        t.instant("marker", note="hi")
        events = t.chrome_events()
        assert len(events) == 3
        for event in events:
            assert CHROME_REQUIRED_KEYS <= set(event)
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert event["dur"] >= 0
        # Sorted by start timestamp.
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)

        path = tmp_path / "trace.json"
        t.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list)
        assert loaded == events

    def test_render_tree(self):
        t = Tracer()
        with t.span("root", cat="x", n=3):
            with t.span("leaf"):
                pass
        text = t.render_tree()
        assert "root" in text and "leaf" in text
        assert "n=3" in text
        assert t.render_tree(min_us=1e12) == "(no spans recorded)"
        assert Tracer().render_tree() == "(no spans recorded)"

    def test_module_span_records_on_installed_tracer(self):
        with tracer.install() as t:
            with tracer.span("via-module", cat="c"):
                pass
        assert [s.name for s in t.spans] == ["via-module"]

    def test_pipeline_emits_spans(self):
        with tracer.install() as t:
            _small_result(n=32)
        names = {s.name for s in t.spans}
        assert {"simulate", "build_hierarchies", "trace+memsim", "timing"} <= names


# -- counters ------------------------------------------------------------------


class TestCounters:
    def test_counter_set_names_and_consistency(self):
        result = _small_result()
        counters = counter_set(result)
        for name in (
            "L1.hits", "L1.misses", "L1.prefetch_hits", "L1.writebacks",
            "tlb.walks", "dram.read_lines", "dram.written_lines",
            "dram.read_bytes", "dram.written_bytes", "dram.bytes",
            "ops.loads", "ops.stores", "ops.flops", "trace.segments",
        ):
            assert name in counters, name
        assert all(isinstance(v, int) for v in counters.values())
        assert counters["dram.bytes"] == counters["dram.read_bytes"] + counters["dram.written_bytes"]
        assert counters["dram.bytes"] == result.dram_bytes
        assert counters["ops.loads"] == result.total_ops.loads

    def test_counter_set_sums_per_core(self):
        result = simulate(
            transpose.build("Parallel", 64, block=16),
            get_device("xeon_4310t"),
            check_capacity=False,
        )
        per_core = per_core_counter_sets(result)
        assert len(per_core) == result.active_cores > 1
        total = counter_set(result)
        for name, value in total.items():
            assert value == sum(core[name] for core in per_core), name

    def test_diff_counters(self):
        old = {"a": 1, "b": 2}
        new = {"a": 1, "b": 3, "c": 4}
        diff = diff_counters(old, new)
        assert diff == {"b": (2, 3), "c": (None, 4)}
        assert diff_counters(old, dict(old)) == {}


# -- time attribution ----------------------------------------------------------


class TestAttribution:
    @pytest.mark.parametrize("device_key", DEVICE_KEYS)
    @pytest.mark.parametrize("kernel,variant", FIG_GRID)
    def test_components_sum_to_wall_clock(self, kernel, variant, device_key):
        """Acceptance invariant: for every fig2/fig6 variant x device the
        attribution partition reproduces the reported wall-clock."""
        kwargs = {"n": 256} if kernel == "transpose" else {"n": 64, "filter_size": 9}
        report, result = profile_run(kernel, variant, device_key, **kwargs)
        seconds = result.timing.seconds
        assert seconds > 0
        for attribution in result.timing.attribution:
            assert attribution.total() == pytest.approx(seconds, rel=1e-9)
            # No component may be negative.
            assert attribution.compute >= 0
            assert attribution.transfer >= 0
            assert attribution.tlb >= 0
            assert attribution.dram_stream >= 0
            assert attribution.dram_contention >= 0
            assert attribution.idle >= 0
            assert all(v >= 0 for v in attribution.exposed_latency.values())
        summary = result.timing.attribution_summary()
        assert sum(summary.values()) == pytest.approx(seconds, rel=1e-9)
        assert sum(report.attribution.values()) == pytest.approx(report.seconds, rel=1e-9)

    def test_report_attribution_matches_timing(self):
        report, result = profile_run("transpose", "Naive", "mango_pi_d1", n=64)
        assert report.attribution == result.timing.attribution_summary()
        assert len(report.per_core_attribution) == result.active_cores
        assert report.seconds == result.seconds


# -- profile_run ---------------------------------------------------------------


class TestProfileRun:
    def test_unknown_names_raise(self):
        with pytest.raises(ProfileError, match="kernel"):
            profile_run("fft", "Naive", "mango_pi_d1")
        with pytest.raises(ProfileError, match="variant"):
            profile_run("transpose", "SuperFast", "mango_pi_d1")
        with pytest.raises(ProfileError, match="device"):
            profile_run("transpose", "Naive", "cray_1")

    def test_case_insensitive_resolution(self):
        report, _ = profile_run("Transpose", "naive", "MANGO_PI_D1", n=64)
        assert report.kernel == "transpose"
        assert report.variant == "Naive"

    def test_as_dict_round_trips_through_json(self):
        report, _ = profile_run("transpose", "Blocking", "mango_pi_d1", n=64)
        data = json.loads(json.dumps(report.as_dict()))
        assert data["kernel"] == "transpose"
        assert data["counters"]["dram.bytes"] > 0
        assert data["roofline"]["memory_bound"] in (True, False)


# -- baselines -----------------------------------------------------------------


def _fake_report(counters=None, seconds=1.0):
    return ProfileReport(
        kernel="transpose",
        variant="Naive",
        device_key="dev@1",
        scale=16,
        params={"n": 64, "block": 16},
        active_cores=1,
        seconds=seconds,
        bottleneck="dram bandwidth",
        counters=counters or {"L1.misses": 100, "dram.bytes": 6400},
    )


class TestBaseline:
    def test_save_then_check_clean(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        report = _fake_report()
        save_baseline(path, report)
        assert check_report(report, path) == []
        data = load_baselines(path)
        assert data["schema"] == BASELINE_SCHEMA
        assert len(data["entries"]) == 1

    def test_missing_entry_is_a_violation(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        violations = check_report(_fake_report(), path)
        assert len(violations) == 1
        assert "no baseline entry" in violations[0]

    def test_counter_drift_detected(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, _fake_report())
        drifted = _fake_report(counters={"L1.misses": 101, "dram.bytes": 6400})
        violations = check_report(drifted, path)
        assert any("L1.misses" in v for v in violations)
        # A relative tolerance forgives the 1% drift.
        assert check_report(drifted, path, counter_rtol=0.02) == []

    def test_new_and_missing_counters_flagged(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, _fake_report())
        changed = _fake_report(counters={"L1.misses": 100, "L2.misses": 5})
        violations = check_report(changed, path)
        assert any("dram.bytes" in v and "missing from run" in v for v in violations)
        assert any("L2.misses" in v and "not in baseline" in v for v in violations)

    def test_seconds_drift_detected(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, _fake_report(seconds=1.0))
        violations = check_report(_fake_report(seconds=1.1), path)
        assert any("seconds" in v for v in violations)
        assert check_report(_fake_report(seconds=1.0 + 1e-9), path) == []

    def test_save_merges_entries(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        save_baseline(path, _fake_report())
        other = _fake_report()
        other.variant = "Blocking"
        save_baseline(path, other)
        assert len(load_baselines(path)["entries"]) == 2

    def test_bad_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 999, "entries": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baselines(str(path))
        violations = check_report(_fake_report(), str(path))
        assert any("unusable" in v for v in violations)

    def test_committed_baseline_is_loadable(self):
        from repro.profiling.baseline import DEFAULT_BASELINE_PATH

        data = load_baselines(DEFAULT_BASELINE_PATH)
        assert data["entries"], "committed baseline must not be empty"
