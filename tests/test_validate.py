"""Tests for structural IR validation."""

import pytest

from repro.errors import ValidationError
from repro.ir import Affine, AffineBound, Block, DType, For, LoopBuilder, Store, validate_program
from repro.ir.program import Array, Program
from repro.ir.stmt import LocalAssign

from tests.conftest import transpose_program, triad_program


def test_valid_programs_pass():
    validate_program(triad_program(8))
    validate_program(transpose_program(8))


def test_kernel_suite_validates():
    from repro.kernels import blur, stream, transpose

    for test in stream.TESTS:
        validate_program(stream.build(test, 32))
    for variant in transpose.VARIANT_ORDER:
        validate_program(transpose.build(variant, 16, block=4))
    for variant in blur.VARIANT_ORDER:
        validate_program(blur.build(variant, 12, 10, 3))


def test_out_of_bounds_subscript_rejected():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 8, Block([Store(arr, [Affine.var("i")], 1.0)]))
    with pytest.raises(ValidationError, match="outside"):
        validate_program(Program("p", body))


def test_negative_subscript_rejected():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 4, Block([Store(arr, [Affine.var("i") - 1], 1.0)]))
    with pytest.raises(ValidationError):
        validate_program(Program("p", body))


def test_unbound_variable_rejected():
    arr = Array("a", DType.F64, (4,))
    body = Block([Store(arr, [Affine.var("ghost")], 1.0)])
    with pytest.raises(ValidationError, match="unbound"):
        validate_program(Program("p", body))


def test_shadowed_loop_variable_rejected():
    arr = Array("a", DType.F64, (4, 4))
    inner = For("i", 0, 4, Block([Store(arr, [Affine.var("i"), Affine.var("i")], 1.0)]))
    outer = For("i", 0, 4, Block([inner]))
    with pytest.raises(ValidationError, match="shadows"):
        validate_program(Program("p", Block([outer])))


def test_local_read_before_assignment_rejected():
    from repro.ir.expr import LocalRef

    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 4, Block([Store(arr, [Affine.var("i")], LocalRef("t"))]))
    with pytest.raises(ValidationError, match="before assignment"):
        validate_program(Program("p", body))


def test_local_accumulate_before_assignment_rejected():
    body = For("i", 0, 4, Block([LocalAssign("t", 1.0, accumulate=True)]))
    with pytest.raises(ValidationError, match="accumulated"):
        validate_program(Program("p", Block([body]), arrays=[]))


def test_nested_parallel_rejected():
    arr = Array("a", DType.F64, (4, 4))
    inner = For(
        "j", 0, 4, Block([Store(arr, [Affine.var("i"), Affine.var("j")], 1.0)]), parallel=True
    )
    outer = For("i", 0, 4, Block([inner]), parallel=True)
    with pytest.raises(ValidationError, match="nested"):
        validate_program(Program("p", Block([outer])))


def test_zero_trip_loop_is_fine():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 4, 4, Block([Store(arr, [Affine.var("i")], 1.0)]))
    validate_program(Program("p", body))  # body never runs; i-range collapses


def test_triangular_bounds_validate():
    # j in [i+1, n): max value of j is n-1, within bounds.
    validate_program(transpose_program(16))


class TestIntervalAnalysis:
    """The interval analysis behind the subscript bounds check."""

    def test_negative_coefficient_in_bounds(self):
        # a[n-1-i] for i in [0, n) sweeps [0, n-1]: legal.
        n = 8
        arr = Array("a", DType.F64, (n,))
        body = For("i", 0, n, Block([Store(arr, [Affine(n - 1) - Affine.var("i")], 1.0)]))
        validate_program(Program("reverse", body))

    def test_negative_coefficient_underflow_rejected(self):
        # a[n-2-i] reaches -1 at the last iteration.
        n = 8
        arr = Array("a", DType.F64, (n,))
        body = For("i", 0, n, Block([Store(arr, [Affine(n - 2) - Affine.var("i")], 1.0)]))
        with pytest.raises(ValidationError, match=r"\[-1, 6\]"):
            validate_program(Program("reverse", body))

    def test_negative_coefficient_interval_orientation(self):
        # -2i over i in [0, 3] is [-6, 0], not [0, -6]: the coefficient
        # sign must swap which endpoint feeds which bound.
        from repro.ir.validate import _affine_range

        assert _affine_range(Affine.var("i") * -2, {"i": (0, 3)}) == (-6, 0)
        assert _affine_range(Affine.var("i") * -2 + 6, {"i": (0, 3)}) == (0, 6)

    def test_min_upper_bound_caps_the_range(self):
        # for i_blk in [0, 10, step 4): for i in [i_blk, min(i_blk+4, 10)):
        # i's maximum is 9, so a[i] over shape (10,) validates even though
        # i_blk+4 alone would reach 12.
        arr = Array("a", DType.F64, (10,))
        i_blk = Affine.var("i_blk")
        inner = For(
            "i", i_blk, AffineBound(i_blk + 4, Affine(10)),
            Block([Store(arr, [Affine.var("i")], 1.0)]),
        )
        outer = For("i_blk", 0, 10, Block([inner]), step=4)
        validate_program(Program("blocked", Block([outer])))

    def test_min_upper_bound_still_detects_overflow(self):
        # With shape (9,) the same nest overruns: min(i_blk+4, 10) allows
        # i = 9.
        arr = Array("a", DType.F64, (9,))
        i_blk = Affine.var("i_blk")
        inner = For(
            "i", i_blk, AffineBound(i_blk + 4, Affine(10)),
            Block([Store(arr, [Affine.var("i")], 1.0)]),
        )
        outer = For("i_blk", 0, 10, Block([inner]), step=4)
        with pytest.raises(ValidationError, match="outside"):
            validate_program(Program("blocked", Block([outer])))

    def test_blur_halo_out_of_bounds_rejected(self):
        # A blur row pass that forgets to shrink the output range reads
        # src[i + i_f] past the end of the row: the classic halo bug.
        n, f = 12, 3
        b = LoopBuilder("blur_bad_halo")
        src = b.array("src", DType.F64, (n,))
        dst = b.array("dst", DType.F64, (n,))
        with pytest.raises(ValidationError, match="outside"):
            with b.loop("i", 0, n) as i:
                with b.loop("i_f", 0, f) as i_f:
                    b.accumulate(dst, i, src[i + i_f])
            validate_program(b.build())

    def test_blur_halo_correct_range_validates(self):
        n, f = 12, 3
        b = LoopBuilder("blur_good_halo")
        src = b.array("src", DType.F64, (n,))
        dst = b.array("dst", DType.F64, (n,))
        with b.loop("i", 0, n - f + 1) as i:
            with b.loop("i_f", 0, f) as i_f:
                b.accumulate(dst, i, src[i + i_f])
        validate_program(b.build())

    def test_paper_blur_variants_have_legal_halos(self):
        from repro.kernels import blur

        for variant in blur.VARIANT_ORDER:
            validate_program(blur.build(variant, 16, 12, 5))


def test_validation_collects_multiple_errors():
    arr = Array("a", DType.F64, (2,))
    body = Block(
        [
            Store(arr, [Affine.var("p")], 1.0),
            Store(arr, [Affine.var("q")], 1.0),
        ]
    )
    with pytest.raises(ValidationError) as exc:
        validate_program(Program("p", body))
    message = str(exc.value)
    assert "p" in message and "q" in message
