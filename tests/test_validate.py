"""Tests for structural IR validation."""

import pytest

from repro.errors import ValidationError
from repro.ir import Affine, Block, DType, For, LoopBuilder, Store, validate_program
from repro.ir.program import Array, Program
from repro.ir.stmt import LocalAssign

from tests.conftest import transpose_program, triad_program


def test_valid_programs_pass():
    validate_program(triad_program(8))
    validate_program(transpose_program(8))


def test_kernel_suite_validates():
    from repro.kernels import blur, stream, transpose

    for test in stream.TESTS:
        validate_program(stream.build(test, 32))
    for variant in transpose.VARIANT_ORDER:
        validate_program(transpose.build(variant, 16, block=4))
    for variant in blur.VARIANT_ORDER:
        validate_program(blur.build(variant, 12, 10, 3))


def test_out_of_bounds_subscript_rejected():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 8, Block([Store(arr, [Affine.var("i")], 1.0)]))
    with pytest.raises(ValidationError, match="outside"):
        validate_program(Program("p", body))


def test_negative_subscript_rejected():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 4, Block([Store(arr, [Affine.var("i") - 1], 1.0)]))
    with pytest.raises(ValidationError):
        validate_program(Program("p", body))


def test_unbound_variable_rejected():
    arr = Array("a", DType.F64, (4,))
    body = Block([Store(arr, [Affine.var("ghost")], 1.0)])
    with pytest.raises(ValidationError, match="unbound"):
        validate_program(Program("p", body))


def test_shadowed_loop_variable_rejected():
    arr = Array("a", DType.F64, (4, 4))
    inner = For("i", 0, 4, Block([Store(arr, [Affine.var("i"), Affine.var("i")], 1.0)]))
    outer = For("i", 0, 4, Block([inner]))
    with pytest.raises(ValidationError, match="shadows"):
        validate_program(Program("p", Block([outer])))


def test_local_read_before_assignment_rejected():
    from repro.ir.expr import LocalRef

    arr = Array("a", DType.F64, (4,))
    body = For("i", 0, 4, Block([Store(arr, [Affine.var("i")], LocalRef("t"))]))
    with pytest.raises(ValidationError, match="before assignment"):
        validate_program(Program("p", body))


def test_local_accumulate_before_assignment_rejected():
    body = For("i", 0, 4, Block([LocalAssign("t", 1.0, accumulate=True)]))
    with pytest.raises(ValidationError, match="accumulated"):
        validate_program(Program("p", Block([body]), arrays=[]))


def test_nested_parallel_rejected():
    arr = Array("a", DType.F64, (4, 4))
    inner = For(
        "j", 0, 4, Block([Store(arr, [Affine.var("i"), Affine.var("j")], 1.0)]), parallel=True
    )
    outer = For("i", 0, 4, Block([inner]), parallel=True)
    with pytest.raises(ValidationError, match="nested"):
        validate_program(Program("p", Block([outer])))


def test_zero_trip_loop_is_fine():
    arr = Array("a", DType.F64, (4,))
    body = For("i", 4, 4, Block([Store(arr, [Affine.var("i")], 1.0)]))
    validate_program(Program("p", body))  # body never runs; i-range collapses


def test_triangular_bounds_validate():
    # j in [i+1, n): max value of j is n-1, within bounds.
    validate_program(transpose_program(16))


def test_validation_collects_multiple_errors():
    arr = Array("a", DType.F64, (2,))
    body = Block(
        [
            Store(arr, [Affine.var("p")], 1.0),
            Store(arr, [Affine.var("q")], 1.0),
        ]
    )
    with pytest.raises(ValidationError) as exc:
        validate_program(Program("p", body))
    message = str(exc.value)
    assert "p" in message and "q" in message
