"""The simulated PMU: 3C miss classification, passivity, counter merge.

Closed-form cases pin each 3C class with a trace where the taxonomy has
exactly one right answer; the hypothesis suite then checks the class
decomposition and the passivity contract on arbitrary segment mixes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec.trace import Segment
from repro.memsim import (
    Cache,
    MemoryHierarchy,
    NO_PREFETCH,
    U74_PREFETCH,
    snapshot,
)
from repro.memsim.pmu import CAPACITY, COMPULSORY, CONFLICT, MISS_CLASSES
from repro.memsim.stats import add_counters

LINE = 64


def seg(base, stride, count, write=False, esize=8, ref=0):
    return Segment(ref, base, stride, count, write, esize)


def small_hierarchy(prefetch=NO_PREFETCH):
    """One 4 KiB 4-way L1 (64 lines, 16 sets) — tiny enough to overflow."""
    return MemoryHierarchy([Cache("L1", 4096, 4)], prefetch=prefetch)


class TestClosedForm3C:
    def test_streaming_is_all_compulsory(self):
        h = small_hierarchy()
        pmu = h.attach_pmu()
        h.run([seg(0, 8, 512)])  # 4 KiB sequential: 64 distinct lines
        lvl = pmu.level("L1")
        assert lvl.compulsory == 64
        assert lvl.capacity == 0
        assert lvl.conflict == 0
        assert lvl.misses == snapshot(h).levels[0].misses == 64

    def test_oversized_rewalk_is_all_capacity(self):
        # Walk twice the cache's 64-line capacity, twice.  Every second-pass
        # reuse distance is 128 lines, so the fully-associative shadow has
        # also evicted the line: the working set simply does not fit.
        h = small_hierarchy()
        pmu = h.attach_pmu()
        walk = seg(0, 8, 1024)  # 8 KiB: 128 distinct lines
        h.run([walk, walk])
        lvl = pmu.level("L1")
        assert lvl.compulsory == 128
        assert lvl.capacity == 128
        assert lvl.conflict == 0

    def test_set_aliasing_is_all_conflict(self):
        # Five lines, all landing in set 0 of a 4-way cache (stride = one
        # full row of sets).  They fit the capacity 16x over, so on the
        # second pass the shadow still holds every line: only the set
        # mapping evicted them.
        h = small_hierarchy()
        pmu = h.attach_pmu()
        aliasing = seg(0, 16 * LINE, 5)
        h.run([aliasing, aliasing])
        lvl = pmu.level("L1")
        assert lvl.compulsory == 5
        assert lvl.capacity == 0
        assert lvl.conflict == 5
        assert lvl.set_conflicts == {0: 5}

    def test_counters_view_names(self):
        h = small_hierarchy()
        pmu = h.attach_pmu()
        h.run([seg(0, 8, 64)])
        counters = pmu.counters()
        for cls in MISS_CLASSES:
            assert f"pmu.L1.{cls}" in counters
        assert counters["pmu.L1.compulsory"] == 8

    def test_per_ref_attribution_partitions_misses(self):
        h = small_hierarchy()
        pmu = h.attach_pmu()
        h.run([seg(0, 8, 512, ref=1), seg(8192, 8, 512, ref=2)])
        lvl = pmu.level("L1")
        assert set(lvl.per_ref) == {1, 2}
        assert [sum(t) for t in (lvl.per_ref[1], lvl.per_ref[2])] == [64, 64]
        by_class = [0, 0, 0]
        for triple in lvl.per_ref.values():
            for cls in (COMPULSORY, CAPACITY, CONFLICT):
                by_class[cls] += triple[cls]
        assert by_class == [lvl.compulsory, lvl.capacity, lvl.conflict]


segments = st.lists(
    st.builds(
        seg,
        base=st.integers(0, 4 * 4096),
        stride=st.sampled_from([-64, -8, 0, 8, 16, 64, 512, 1024]),
        count=st.integers(1, 200),
        write=st.booleans(),
        ref=st.integers(0, 3),
    ),
    min_size=1,
    max_size=12,
)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(segments=segments)
    def test_three_cs_partition_misses(self, segments):
        h = MemoryHierarchy(
            [Cache("L1", 4096, 4), Cache("L2", 16 * 1024, 8)],
            prefetch=U74_PREFETCH,
        )
        pmu = h.attach_pmu()
        h.run(segments)
        snap = snapshot(h)
        for index, lvl in enumerate(pmu.levels):
            assert lvl.compulsory + lvl.capacity + lvl.conflict == lvl.misses
            assert lvl.misses == snap.levels[index].misses

    @settings(max_examples=40, deadline=None)
    @given(segments=segments)
    def test_pmu_is_passive(self, segments):
        def build():
            return MemoryHierarchy(
                [Cache("L1", 4096, 4), Cache("L2", 16 * 1024, 8)],
                prefetch=U74_PREFETCH,
                tlb=None,
            )

        plain, observed = build(), build()
        observed.attach_pmu()
        plain.run(segments)
        observed.run(segments)
        bare, with_pmu = snapshot(plain), snapshot(observed)
        assert with_pmu.pmu  # the PMU did record something
        assert bare.as_dict() == {
            k: v for k, v in with_pmu.as_dict().items() if not k.startswith("pmu.")
        }

    @settings(max_examples=40, deadline=None)
    @given(segments=segments)
    def test_prefetch_issued_partitions_into_useful_and_polluting(self, segments):
        h = small_hierarchy(prefetch=U74_PREFETCH)
        pmu = h.attach_pmu()
        h.run(segments)
        counters = pmu.counters()
        assert (
            counters["pmu.prefetch.issued"]
            == counters["pmu.prefetch.useful"] + counters["pmu.prefetch.polluting"]
        )


counter_dicts = st.dictionaries(
    st.sampled_from(["pmu.L1.conflict", "pmu.L1.capacity", "L1.misses", "dram.bytes"]),
    st.integers(0, 10**6),
    max_size=4,
)


class TestCounterMerge:
    @settings(max_examples=60, deadline=None)
    @given(a=counter_dicts, b=counter_dicts, c=counter_dicts)
    def test_add_counters_associative_and_commutative(self, a, b, c):
        assert add_counters(add_counters(a, b), c) == add_counters(a, add_counters(b, c))
        assert add_counters(a, b) == add_counters(b, a)

    def test_add_counters_identity(self):
        assert add_counters({"x": 3}, {}) == {"x": 3}
        assert add_counters() == {}


class TestSimulatePlumbing:
    def test_simulate_pmu_counters_merge_into_counter_set(self):
        from repro.devices import get_device
        from repro.kernels import transpose
        from repro.profiling.counters import counter_set
        from repro.simulate import simulate

        device = get_device("mango_pi_d1")
        result = simulate(transpose.naive(64), device, pmu=True)
        counters = counter_set(result)
        assert counters["pmu.L1.compulsory"] > 0
        total_3c = sum(counters[f"pmu.L1.{cls}"] for cls in MISS_CLASSES)
        assert total_3c == counters["L1.misses"]
        assert result.pmus and result.ref_table

    def test_simulate_pmu_off_by_default(self):
        from repro.devices import get_device
        from repro.kernels import transpose
        from repro.simulate import simulate

        result = simulate(transpose.naive(64), get_device("mango_pi_d1"))
        assert result.pmus == []
        assert all(not s.pmu for s in result.snapshots)

    def test_simulate_pmu_passivity_end_to_end(self):
        from repro.devices import get_device
        from repro.kernels import transpose
        from repro.simulate import simulate

        device = get_device("visionfive_jh7100")
        program = transpose.blocking(96, block=16)
        bare = simulate(program, device)
        observed = simulate(program, device, pmu=True)
        assert observed.seconds == pytest.approx(bare.seconds, rel=0, abs=0)
        assert observed.dram_bytes == bare.dram_bytes
