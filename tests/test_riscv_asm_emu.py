"""Assembler and emulator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AsmSyntaxError, EmulationError
from repro.riscv import Memory, assemble, expand_li, run_assembly
from repro.riscv.emulator import Emulator

EXIT = "li a7, 93\necall\n"


def run(body: str, **kwargs) -> Emulator:
    return run_assembly(body + "\n" + EXIT, **kwargs)


class TestAssembler:
    def test_labels_and_branches(self):
        emu = run(
            """
            li t0, 0
            li t1, 5
        loop:
            addi t0, t0, 1
            blt t0, t1, loop
            mv a0, t0
            """
        )
        assert emu.get_x(10) == 5

    def test_comments_and_blanks(self):
        emu = run("li a0, 42  # the answer\n\n.text\n")
        assert emu.get_x(10) == 42

    def test_undefined_label(self):
        with pytest.raises(AsmSyntaxError, match="undefined label"):
            assemble("j nowhere\n")

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError, match="unknown mnemonic"):
            assemble("frobnicate a0, a1\n")

    def test_unknown_register(self):
        with pytest.raises(AsmSyntaxError, match="register"):
            assemble("addi q9, zero, 1\n")

    def test_memory_operand_syntax(self):
        with pytest.raises(AsmSyntaxError, match="off\\(reg\\)"):
            assemble("ld a0, a1\n")

    def test_label_address(self):
        program = assemble("nop\nnop\ntarget:\nnop\n")
        assert program.address_of("target") == program.base + 8

    @settings(max_examples=80)
    @given(st.integers(-(2**63), 2**63 - 1))
    def test_li_materializes_any_64bit_value(self, value):
        emu = run(f"li a0, {value}")
        assert emu.get_x(10) == value

    def test_li_expansion_is_compact_for_small_values(self):
        assert len(expand_li(10, 42)) == 1
        assert len(expand_li(10, 0x12345)) == 2


class TestEmulatorInteger:
    def test_arithmetic(self):
        emu = run("li t0, 7\nli t1, 3\nmul a0, t0, t1")
        assert emu.get_x(10) == 21

    def test_division_semantics(self):
        emu = run("li t0, -7\nli t1, 2\ndiv a0, t0, t1\nrem a1, t0, t1")
        assert emu.get_x(10) == -3  # trunc toward zero
        assert emu.get_x(11) == -1

    def test_divide_by_zero(self):
        emu = run("li t0, 5\nli t1, 0\ndiv a0, t0, t1\nrem a1, t0, t1")
        assert emu.get_x(10) == -1
        assert emu.get_x(11) == 5

    def test_shifts(self):
        emu = run("li t0, -8\nsrai a0, t0, 1\nli t1, 8\nsrli a1, t1, 2")
        assert emu.get_x(10) == -4
        assert emu.get_x(11) == 2

    def test_word_ops_sign_extend(self):
        emu = run("li t0, 0x7fffffff\naddiw a0, t0, 1")
        assert emu.get_x(10) == -(2**31)

    def test_x0_is_hardwired(self):
        emu = run("li t0, 5\nadd zero, t0, t0\nmv a0, zero")
        assert emu.get_x(10) == 0

    def test_loads_stores(self):
        emu = run(
            """
            li t0, 0x2000
            li t1, -123
            sd t1, 8(t0)
            ld a0, 8(t0)
            lw a1, 8(t0)
            lbu a2, 8(t0)
            """
        )
        assert emu.get_x(10) == -123
        assert emu.get_x(11) == -123
        assert emu.get_x(12) == (-123) & 0xFF

    def test_exit_code(self):
        emu = run_assembly("li a0, 7\nli a7, 93\necall\n")
        assert emu.exit_code == 7

    def test_ebreak_halts(self):
        emu = run_assembly("li a0, 1\nebreak\n")
        assert emu.halted

    def test_runaway_guard(self):
        with pytest.raises(EmulationError, match="steps"):
            run_assembly("loop: j loop\n", max_steps=100)

    def test_bad_memory_access(self):
        with pytest.raises(EmulationError, match="outside"):
            run("li t0, -100\nld a0, 0(t0)")

    def test_pc_off_program(self):
        with pytest.raises(EmulationError, match="pc"):
            run_assembly("jr zero\n")


class TestEmulatorFloat:
    def test_double_arithmetic(self):
        emu = run(
            """
            li t0, 0x2000
            li t1, 4614253070214989087   # bits of 3.14
            sd t1, 0(t0)
            fld ft0, 0(t0)
            fadd.d ft1, ft0, ft0
            fsd ft1, 8(t0)
            ld a0, 8(t0)
            """
        )
        import struct

        assert struct.unpack("<d", struct.pack("<q", emu.get_x(10)))[0] == pytest.approx(6.28)

    def test_fma(self):
        emu = run(
            """
            li t0, 2
            fcvt.d.l ft0, t0
            li t0, 3
            fcvt.d.l ft1, t0
            li t0, 4
            fcvt.d.l ft2, t0
            fmadd.d ft3, ft0, ft1, ft2
            fcvt.l.d a0, ft3
            """
        )
        assert emu.get_x(10) == 10

    def test_f32_rounding(self):
        emu = run(
            """
            li t0, 1
            fcvt.s.l ft0, t0
            li t1, 3
            fcvt.s.l ft1, t1
            fdiv.s ft2, ft0, ft1
            fcvt.d.s ft3, ft2
            """
        )
        assert emu.f[3] == pytest.approx(np.float32(1.0) / np.float32(3.0))

    def test_compare(self):
        emu = run(
            """
            li t0, 1
            fcvt.d.l ft0, t0
            li t0, 2
            fcvt.d.l ft1, t0
            flt.d a0, ft0, ft1
            fle.d a1, ft1, ft0
            """
        )
        assert emu.get_x(10) == 1 and emu.get_x(11) == 0


class TestVectorUnit:
    def test_vsetvli_clamps_to_vlmax(self):
        emu = run("li t0, 100\nvsetvli a0, t0, e64, m1, ta, ma", vlen_bits=256)
        assert emu.get_x(10) == 4  # 256/64

    def test_vector_add(self):
        memory = Memory()
        src = np.arange(4, dtype=np.float64)
        memory.write_bytes(0x4000, src.tobytes())
        memory.write_bytes(0x5000, (src * 10).tobytes())
        emu = run_assembly(
            """
            li t0, 4
            vsetvli t0, t0, e64, m1, ta, ma
            li a1, 0x4000
            li a2, 0x5000
            li a3, 0x6000
            vle64.v v1, (a1)
            vle64.v v2, (a2)
            vfadd.vv v3, v1, v2
            vse64.v v3, (a3)
            li a7, 93
            ecall
            """,
            memory=memory,
            vlen_bits=256,
        )
        out = np.frombuffer(emu.memory.read_bytes(0x6000, 32), dtype=np.float64)
        assert np.array_equal(out, src * 11)

    def test_vfmacc_vf(self):
        memory = Memory()
        src = np.arange(4, dtype=np.float64)
        memory.write_bytes(0x4000, src.tobytes())
        memory.write_bytes(0x5000, np.ones(4).tobytes())
        emu = run_assembly(
            """
            li t0, 4
            vsetvli t0, t0, e64, m1, ta, ma
            li t1, 3
            fcvt.d.l fa0, t1
            li a1, 0x4000
            li a2, 0x5000
            vle64.v v1, (a1)
            vle64.v v2, (a2)
            vfmacc.vf v2, fa0, v1
            vse64.v v2, (a2)
            li a7, 93
            ecall
            """,
            memory=memory,
            vlen_bits=256,
        )
        out = np.frombuffer(emu.memory.read_bytes(0x5000, 32), dtype=np.float64)
        assert np.array_equal(out, 1.0 + 3.0 * src)

    def test_sew_mismatch_rejected(self):
        with pytest.raises(EmulationError, match="SEW"):
            run(
                """
                li t0, 4
                vsetvli t0, t0, e64, m1, ta, ma
                li a1, 0x4000
                vle32.v v1, (a1)
                """
            )


class TestMemoryTracing:
    def test_trace_records_segments(self):
        memory = Memory()
        memory.trace = []
        run_assembly(
            "li t0, 0x2000\nsd zero, 0(t0)\nld a0, 0(t0)\nli a7, 93\necall\n",
            memory=memory,
        )
        assert len(memory.trace) == 2
        write, read = memory.trace
        assert write.is_write and not read.is_write
        assert write.base == 0x2000
