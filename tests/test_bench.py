"""The performance regression observatory: statistics, harness, trend
store, gate, engine skip-path counters, and noise-floor baselines.

The statistical core is property-tested (the CI must contain the median,
outlier rejection must respect its cap, ``compare`` must be symmetric);
the harness/trend/gate layers get deterministic unit tests plus one
seeded end-to-end run→gate flow with an injected ``tracegen_slow`` fault
proving the regression verdict names the tracegen phase.
"""

import json
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.gate import (
    check_committed_speedup,
    compare_runs,
    default_ratio_gates,
    gate_runs,
)
from repro.bench.harness import (
    fingerprint_hash,
    fingerprints_comparable,
    host_fingerprint,
    measure,
    phase_span,
)
from repro.bench.run import append_trend, load_run, run_manifest, save_run
from repro.bench.stats import (
    Summary,
    bootstrap_ci,
    compare,
    mad,
    median,
    noise_floor,
    reject_outliers,
    summarize,
)
from repro.bench.trend import TrendStore, current_commit
from repro.runtime.faults import FaultPlan, clear_faults, install_faults

samples_st = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


# -- statistics: properties ---------------------------------------------------


@given(samples_st)
@settings(max_examples=60, deadline=None)
def test_bootstrap_ci_contains_median(xs):
    lo, hi = bootstrap_ci(xs)
    med = median(xs)
    assert lo <= med <= hi


@given(samples_st, st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=60, deadline=None)
def test_outlier_rejection_caps_drops(xs, max_frac):
    kept, rejected = reject_outliers(xs, max_frac=max_frac)
    assert len(rejected) <= int(max_frac * len(xs))
    assert sorted(kept + rejected) == sorted(xs)


@given(samples_st.filter(lambda xs: len(xs) >= 3), samples_st.filter(lambda xs: len(xs) >= 3))
@settings(max_examples=60, deadline=None)
def test_compare_is_symmetric(xs, ys):
    a, b = summarize(xs), summarize(ys)
    ab, ba = compare(a, b), compare(b, a)
    assert ab.significant == ba.significant
    flipped = {"regression": "improvement", "improvement": "regression"}
    assert ba.direction == flipped.get(ab.direction, ab.direction)


@given(samples_st)
@settings(max_examples=40, deadline=None)
def test_summarize_median_within_kept_range(xs):
    s = summarize(xs)
    assert s.min <= s.median <= s.max
    assert s.n == len(xs)
    assert s.ci_low <= s.median <= s.ci_high


def test_median_and_mad_basics():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert mad([1.0, 1.0, 1.0]) == 0.0
    assert mad([1.0, 2.0, 4.0]) == 1.0
    with pytest.raises(ValueError):
        median([])


def test_reject_outliers_drops_straggler_keeps_tight_cluster():
    xs = [1.0, 1.01, 0.99, 1.02, 0.98, 50.0]
    kept, rejected = reject_outliers(xs)
    assert rejected == [50.0]
    assert 50.0 not in kept


def test_compare_flags_real_regression_not_noise():
    base = summarize([1.0, 1.01, 0.99, 1.0, 1.02])
    slow = summarize([2.0, 2.02, 1.98, 2.0, 2.04])
    verdict = compare(base, slow)
    assert verdict.significant and verdict.direction == "regression"
    same = compare(base, summarize([1.0, 1.02, 0.98, 1.01, 0.99]))
    assert not same.significant and same.direction == "flat"


def test_noise_floor_measures_spread():
    assert noise_floor([1.0]) == 0.0
    assert noise_floor([1.0, 1.0, 1.0]) == 0.0
    floor = noise_floor([1.0, 1.1, 0.9])
    assert floor == pytest.approx(2.0 * 0.1, rel=1e-9)


# -- harness ------------------------------------------------------------------


def test_measure_collects_phases_and_samples():
    def fn():
        with phase_span("alpha"):
            time.sleep(0.001)
        with phase_span("beta"):
            pass

    m = measure(fn, warmup=0, min_repeats=3, max_repeats=3)
    assert m.repeats == 3 and len(m.samples) == 3
    assert set(m.phases) == {"alpha", "beta"}
    assert m.phases["alpha"].median >= 0.001
    d = m.as_dict()
    assert d["summary"]["n"] == 3 and "alpha" in d["phases"]


def test_fingerprint_hash_stable_and_identity_keyed():
    fp = host_fingerprint()
    assert fingerprint_hash(fp) == fingerprint_hash()
    assert fingerprints_comparable(fp, dict(fp))
    other = dict(fp, cores=fp["cores"] + 1)
    assert not fingerprints_comparable(fp, other)
    assert fingerprint_hash(other) != fingerprint_hash(fp)


# -- trend store --------------------------------------------------------------


def test_trend_append_and_query(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "abc123")
    assert current_commit() == "abc123"
    store = TrendStore(str(tmp_path / "trend"))
    for i in range(4):
        store.append({"workload": "w" if i % 2 else "v", "median": float(i)})
    points = store.points()
    assert [p["median"] for p in points] == [0.0, 1.0, 2.0, 3.0]
    assert all("ts" in p for p in points)
    assert [p["median"] for p in store.points(workload="w")] == [1.0, 3.0]
    assert [p["median"] for p in store.points(limit=2)] == [2.0, 3.0]


def test_trend_rotation_preserves_history_across_segments(tmp_path):
    store = TrendStore(str(tmp_path), max_bytes=120, max_segments=5)
    for i in range(12):
        store.append({"workload": "w", "median": float(i)})
    assert len(store.segments()) > 1
    assert [p["median"] for p in store.points()] == [float(i) for i in range(12)]


def test_trend_rotation_caps_segments_and_skips_torn_lines(tmp_path):
    store = TrendStore(str(tmp_path), max_bytes=60, max_segments=2)
    for i in range(30):
        store.append({"workload": "w", "median": float(i)})
    assert len(store.segments()) <= 3  # active + max_segments rotated
    with open(store.path, "a") as fh:
        fh.write('{"torn": \n')
    points = store.points()
    assert points and all("median" in p for p in points)


# -- run documents and the gate -----------------------------------------------


def _summary_dict(values):
    return summarize(values).as_dict()


def _doc(median_s, host_hash="h1", phases=None, commit="c1"):
    jitter = [median_s, median_s * 1.01, median_s * 0.99, median_s, median_s * 1.005]
    entry = {"summary": _summary_dict(jitter), "kind": "test", "phases": {}}
    for name, phase_median in (phases or {}).items():
        entry["phases"][name] = _summary_dict(
            [phase_median, phase_median * 1.01, phase_median * 0.99]
        )
    return {
        "schema": 1,
        "ts": 0.0,
        "commit": commit,
        "manifest": "quick",
        "fingerprint": {},
        "host_hash": host_hash,
        "workloads": {"w": entry},
        "derived": {},
    }


def test_gate_passes_flat_and_fails_regression_with_phase_attribution():
    base = _doc(1.0, phases={"tracegen": 0.3, "replay": 0.7})
    flat = _doc(1.005, phases={"tracegen": 0.3, "replay": 0.7})
    assert gate_runs(base, flat).ok

    slow = _doc(1.6, phases={"tracegen": 0.9, "replay": 0.7})
    result = gate_runs(base, slow)
    assert not result.ok
    verdict = result.verdicts[0]
    assert verdict.status == "regression"
    assert verdict.primary_phase == "tracegen"
    assert "tracegen +" in verdict.phase_verdict
    assert "tracegen" in result.failures[0]


def test_gate_default_floor_is_coarser_than_compare():
    # +40% between invocations is routine shared-host noise: the pass/fail
    # gate must tolerate it by default, while the informational compare
    # still surfaces it as a regression verdict.
    base = _doc(1.0)
    drifted = _doc(1.4)
    assert gate_runs(base, drifted).ok
    assert compare_runs(base, drifted)[0].status == "regression"
    assert not gate_runs(base, drifted, min_effect=0.02).ok


def test_gate_improvement_does_not_fail():
    base = _doc(1.0)
    fast = _doc(0.5)
    result = gate_runs(base, fast)
    assert result.ok and result.verdicts[0].status == "improvement"


def test_gate_skips_absolute_seconds_across_hosts_but_keeps_ratio_floors():
    base = _doc(1.0, host_hash="laptop")
    new = _doc(10.0, host_hash="ci-host")
    verdicts = compare_runs(base, new)
    assert verdicts[0].status == "skipped"
    assert "fingerprint differs" in verdicts[0].detail
    assert gate_runs(base, new).ok

    base["ratio_gates"] = {"engine_speedup": {"min": 8.0}}
    new["derived"] = {"engine_speedup": {"value": 9.0, "ci_low": 5.0, "ci_high": 13.0}}
    result = gate_runs(base, new)
    assert not result.ok
    assert "CI low 5.00 below floor 8" in result.failures[0]


def test_gate_fails_when_baseline_workload_not_measured():
    base = _doc(1.0)
    new = _doc(1.0)
    new["workloads"] = {}
    result = gate_runs(base, new)
    assert not result.ok and "not measured" in result.failures[0]


def test_default_ratio_gates_halve_ci_low():
    doc = {"derived": {
        "engine_speedup": {"value": 20.0, "ci_low": 16.0, "ci_high": 25.0},
        "tiny_ratio": {"value": 1.1, "ci_low": 1.0, "ci_high": 1.2},
    }}
    gates = default_ratio_gates(doc)
    assert gates == {"engine_speedup": {"min": 8.0}}


def test_check_committed_speedup_new_and_old_schema(tmp_path):
    new_schema = tmp_path / "new.json"
    new_schema.write_text(json.dumps(
        {"engine": {"exact": 30.0, "fast": 2.0, "speedup": 15.0,
                    "speedup_ci": [12.0, 18.0]}}
    ))
    assert check_committed_speedup(str(new_schema), min_speedup=10.0) == []
    assert check_committed_speedup(str(new_schema), min_speedup=13.0)

    old_schema = tmp_path / "old.json"
    old_schema.write_text(json.dumps({"engine": {"speedup": 15.0}}))
    assert check_committed_speedup(str(old_schema), min_speedup=10.0) == []
    assert check_committed_speedup(str(old_schema), min_speedup=16.0)

    assert check_committed_speedup(str(tmp_path / "absent.json"))


def test_run_document_io_rejects_wrong_schema(tmp_path):
    path = str(tmp_path / "run.json")
    save_run({"schema": 1, "workloads": {}}, path)
    assert load_run(path)["workloads"] == {}
    save_run({"schema": 99}, path)
    with pytest.raises(ValueError):
        load_run(path)


# -- end-to-end: run → trend → gate with an injected tracegen fault -----------


@pytest.fixture
def clean_faults():
    yield
    clear_faults()


def _quick_run(**kwargs):
    return run_manifest(
        "quick", only=["fig2_naive"], min_repeats=3, max_repeats=3,
        warmup=0, **kwargs,
    )


def test_bench_run_document_shape_and_trend(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_COMMIT", "e2e1234")
    doc = _quick_run()
    assert doc["schema"] == 1 and doc["commit"] == "e2e1234"
    assert doc["host_hash"] == fingerprint_hash(doc["fingerprint"])
    entry = doc["workloads"]["fig2_naive"]
    summary = entry["summary"]
    assert summary["n"] == 3
    assert summary["ci_low"] <= summary["median"] <= summary["ci_high"]
    assert {"tracegen", "replay", "timing", "cache_io"} <= set(entry["phases"])

    store = TrendStore(str(tmp_path / "trend"))
    appended = append_trend(doc, store)
    assert appended == 1
    point = store.points()[0]
    assert point["workload"] == "fig2_naive" and point["commit"] == "e2e1234"
    assert point["phases"]["tracegen"] == entry["phases"]["tracegen"]["median"]


def test_gate_flags_injected_tracegen_slowdown(clean_faults):
    base = _quick_run()
    install_faults("tracegen_slow:0.25")
    slow = _quick_run()
    clear_faults()
    # min_effect 1.0: only >2x total moves count, so background load on a
    # shared test host cannot fail the clean pass, while the injected
    # 0.25s sleep on a ~15ms workload is far above it.
    result = gate_runs(base, slow, min_effect=1.0)
    assert not result.ok
    verdict = result.verdicts[0]
    assert verdict.status == "regression"
    assert verdict.primary_phase == "tracegen"
    assert "tracegen +" in verdict.phase_verdict

    clean = _quick_run()
    assert gate_runs(base, clean, min_effect=1.0).ok


def test_bench_cli_run_compare_trend_gate(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_COMMIT", "cli1234")
    out = str(tmp_path / "run.json")
    baseline = str(tmp_path / "baseline.json")
    trend_dir = str(tmp_path / "trend")
    args = ["bench", "run", "--workload", "tracegen_blocking",
            "--min-repeats", "2", "--max-repeats", "2", "--warmup", "0",
            "--output", out, "--save-baseline", baseline,
            "--trend-dir", trend_dir, "--quiet"]
    assert cli.main(args) == 0
    text = capsys.readouterr().out
    assert "tracegen_blocking" in text and "CI95" in text
    assert os.path.exists(out) and os.path.exists(baseline)

    assert cli.main(["bench", "compare", "--baseline", baseline, "--run", out,
                     "--min-effect", "1.0", "--quiet"]) == 0
    capsys.readouterr()
    assert cli.main(["bench", "trend", "--trend-dir", trend_dir, "--json",
                     "--quiet"]) == 0
    points = json.loads(capsys.readouterr().out)
    assert isinstance(points, list) and points
    assert points[-1]["workload"] == "tracegen_blocking"

    assert cli.main(["bench", "gate", "--baseline", baseline, "--run", out,
                     "--min-effect", "1.0", "--quiet"]) == 0


def test_trend_openmetrics_exports_latest_point_per_workload():
    from repro.observe.openmetrics import parse_exposition, render_trend_openmetrics

    points = [
        {"workload": "w", "commit": "c1", "host": "h", "median": 2.0,
         "rel_ci": 0.04, "phases": {"tracegen": 0.5}},
        {"workload": "w", "commit": "c2", "host": "h", "median": 1.5,
         "rel_ci": 0.02, "phases": {"tracegen": 0.4}},
        {"workload": "engine_speedup", "kind": "derived-ratio",
         "commit": "c2", "host": "h", "median": 15.0},
    ]
    text = render_trend_openmetrics(points)
    assert text.rstrip().endswith("# EOF")
    samples = {
        (s["name"], s["labels"].get("workload"), s["labels"].get("phase")): s
        for s in parse_exposition(text)
    }
    # Only the newest point per workload survives.
    assert samples[("repro_bench_seconds", "w", None)]["value"] == 1.5
    assert samples[("repro_bench_seconds", "w", None)]["labels"]["commit"] == "c2"
    assert samples[("repro_bench_phase_seconds", "w", "tracegen")]["value"] == 0.4
    assert samples[("repro_bench_ratio", "engine_speedup", None)]["value"] == 15.0


def test_bench_cli_trend_openmetrics(tmp_path, monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("REPRO_COMMIT", "om1234")
    trend_dir = str(tmp_path / "trend")
    store = TrendStore(trend_dir)
    store.append({"workload": "w", "median": 1.0, "rel_ci": 0.01, "commit": "om1234"})
    exposition = str(tmp_path / "bench.om")
    assert cli.main(["bench", "trend", "--trend-dir", trend_dir,
                     "--openmetrics", exposition, "--quiet"]) == 0
    capsys.readouterr()
    text = open(exposition).read()
    assert 'repro_bench_seconds{workload="w",commit="om1234"' in text
    assert text.rstrip().endswith("# EOF")


def test_bench_cli_check_committed(tmp_path, capsys):
    from repro import cli

    path = tmp_path / "BENCH.json"
    path.write_text(json.dumps(
        {"engine": {"speedup": 20.0, "speedup_ci": [15.0, 25.0]}}
    ))
    assert cli.main(["bench", "gate", "--check-committed", str(path),
                     "--quiet"]) == 0
    assert cli.main(["bench", "gate", "--check-committed", str(path),
                     "--min-speedup", "16", "--quiet"]) == 1
    capsys.readouterr()


# -- fault plan ---------------------------------------------------------------


def test_fault_plan_parses_tracegen_slow():
    plan = FaultPlan.parse("tracegen_slow:0.01")
    assert plan.tracegen_slow == 0.01 and plan.any_active
    assert FaultPlan.parse("tracegen_slow").tracegen_slow == 0.05
    assert not FaultPlan().any_active


# -- engine skip-path counters ------------------------------------------------


def test_fast_cache_closed_form_paths_are_counted():
    from repro.memsim.columnar import FastLruCache

    cache = FastLruCache("L1", 64 * 64, ways=64, line_size=64)  # one set
    lines = list(range(32))
    cache.process_batch(lines, None, False)
    assert cache.skips["streaming"] == 32 and cache.skips["resident"] == 0
    cache.process_batch(lines, None, False)
    assert cache.skips["resident"] == 32
    cache.process_batch([1, 2], None, False)
    assert cache.skips["replayed"] == 2


def test_simulate_reports_engine_skips_and_process_totals():
    from repro.devices.catalog import get_device
    from repro.kernels import transpose as tr
    from repro.memsim.columnar import process_skip_totals
    from repro.simulate import simulate

    before = process_skip_totals()
    result = simulate(
        tr.build("Naive", 64), get_device("mango_pi_d1").scaled(16), engine="fast"
    )
    after = process_skip_totals()
    assert result.engine == "fast"
    assert sum(result.engine_skips.values()) > 0
    grown = {
        path: after[path] - before.get(path, 0) for path in after
    }
    for path, count in result.engine_skips.items():
        assert grown.get(path, 0) >= count

    exact = simulate(
        tr.build("Naive", 64), get_device("mango_pi_d1").scaled(16), engine="exact"
    )
    assert exact.engine == "exact" and exact.engine_skips == {}


def test_perf_stat_surfaces_skip_counters():
    from repro.observe.perf import _stat_rows, render_stat, run_perf

    cell = run_perf("transpose", "Naive", "mango_pi_d1", n=64)
    assert cell.engine in ("fast", "exact")
    if cell.engine != "fast":
        pytest.skip("fast engine not active")
    assert sum(cell.engine_skips.values()) > 0
    names = [name for _value, name, _comment in _stat_rows(cell)]
    assert {"engine.resident", "engine.streaming", "engine.replayed"} <= set(names)
    rendered = render_stat(cell)
    assert "engine.replayed" in rendered and "% of line ops" in rendered

    from repro.observe.openmetrics import render_openmetrics

    exposition = render_openmetrics([cell])
    assert 'repro_engine_skip_ops_total' in exposition
    assert 'path="replayed"' in exposition


def test_serve_metrics_accumulate_engine_skips():
    from repro.serve.metrics import ServeMetrics

    metrics = ServeMetrics()
    metrics.record_engine_skips({"replayed": 10, "resident": 2})
    metrics.record_engine_skips({"replayed": 5})
    metrics.record_engine_skips(None)
    assert metrics.engine_skips == {"replayed": 15, "resident": 2}
    exposition = metrics.render()
    assert 'repro_serve_engine_skip_ops_total{path="replayed"} 15' in exposition


def test_executor_reports_engine_skip_deltas(tmp_path):
    from repro.serve.executor import execute_job, reset_runners

    reset_runners()
    task = {
        "kernel": "transpose", "variant": "Naive", "device": "mango_pi_d1",
        "n": 64, "engine": "fast",
        "cache_path": str(tmp_path / "cache.json"),
    }
    result = execute_job(task)
    assert result["outcome"] == "completed"
    assert sum(result["engine_skips"].values()) > 0
    # A cache hit re-executes nothing, so the delta is empty.
    reset_runners()
    cached = execute_job(task)
    assert cached["outcome"] == "completed"
    assert cached["engine_skips"] == {}


# -- noise-floor baselines ----------------------------------------------------


def test_baseline_noise_floor_widens_seconds_tolerance(tmp_path):
    from repro.profiling.baseline import check_entry, save_entry

    path = str(tmp_path / "baseline.json")
    save_entry(path, "k", {"c": 1}, seconds=1.0, active_cores=1, noise=0.10)
    assert check_entry(path, "k", {"c": 1}, seconds=1.05) == []
    violations = check_entry(path, "k", {"c": 1}, seconds=1.5)
    assert violations and "seconds" in violations[0]

    save_entry(path, "k", {"c": 1}, seconds=1.0, active_cores=1)
    assert check_entry(path, "k", {"c": 1}, seconds=1.05)


def test_profile_save_baseline_records_noise(tmp_path):
    from repro import cli

    baseline = str(tmp_path / "profile.json")
    assert cli.main([
        "profile", "transpose", "Naive", "mango_pi_d1", "--n", "64",
        "--baseline", baseline, "--save-baseline", "--noise-repeats", "2",
        "--quiet",
    ]) == 0
    data = json.load(open(baseline))
    entry = next(iter(data["entries"].values()))
    assert "noise_rel" in entry and entry["noise_rel"] >= 0.0
    assert cli.main([
        "profile", "transpose", "Naive", "mango_pi_d1", "--n", "64",
        "--baseline", baseline, "--check", "--quiet",
    ]) == 0
