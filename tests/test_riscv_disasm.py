"""Disassembler tests: assemble -> disassemble -> assemble fixed point."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DecodingError
from repro.riscv import Instruction, assemble, disassemble, encode, format_instruction
from repro.riscv.codegen import generate_assembly
from repro.kernels import stream, transpose
from repro.transforms import AutoVectorize

regs = st.integers(0, 31)


def roundtrip_words(source: str) -> None:
    first = assemble(source)
    text = disassemble(first.words, base=first.base)
    second = assemble(text, base=first.base)
    assert second.words == first.words, f"\n--- original ---\n{source}\n--- disasm ---\n{text}"


class TestFormat:
    def test_r_type(self):
        assert format_instruction(Instruction("add", rd=10, rs1=11, rs2=12)) == "add a0, a1, a2"

    def test_load_store(self):
        assert format_instruction(Instruction("ld", rd=5, rs1=2, imm=-8)) == "ld t0, -8(sp)"
        assert format_instruction(Instruction("fsd", rs2=8, rs1=2, imm=16)) == "fsd fs0, 16(sp)"

    def test_branch_with_label(self):
        assert (
            format_instruction(Instruction("beq", rs1=5, rs2=0, imm=-8), target_label="loop")
            == "beq t0, zero, loop"
        )

    def test_vsetvli(self):
        from repro.riscv.assembler import parse_vtype

        vtypei = parse_vtype(["e64", "m1", "ta", "ma"], 0, "")
        text = format_instruction(Instruction("vsetvli", rd=6, rs1=7, vtypei=vtypei))
        assert text == "vsetvli t1, t2, e64, m1, ta, ma"

    def test_vfmacc_operand_order(self):
        text = format_instruction(Instruction("vfmacc.vf", rd=1, rs1=10, rs2=2))
        assert text == "vfmacc.vf v1, fa0, v2"

    def test_fcvt_register_files(self):
        assert format_instruction(Instruction("fcvt.d.l", rd=0, rs1=10)) == "fcvt.d.l ft0, a0"
        assert format_instruction(Instruction("fmv.x.d", rd=10, rs1=0)) == "fmv.x.d a0, ft0"


class TestRoundTrip:
    def test_simple_loop(self):
        roundtrip_words(
            """
            li t0, 0
            li t1, 10
        loop:
            addi t0, t0, 1
            blt t0, t1, loop
            li a7, 93
            ecall
            """
        )

    def test_branch_to_end(self):
        roundtrip_words(
            """
            beq zero, zero, done
            addi t0, t0, 1
        done:
            """
            + "nop\n"
        )

    def test_generated_scalar_kernel(self):
        source = generate_assembly(transpose.naive(6))
        roundtrip_words(source)

    def test_generated_rvv_kernel(self):
        program = AutoVectorize().run(stream.triad(32, parallel=False))
        source = generate_assembly(program, use_rvv=True)
        roundtrip_words(source)

    @settings(max_examples=40)
    @given(
        st.lists(
            st.one_of(
                st.builds(
                    lambda m, rd, rs1, rs2: Instruction(m, rd=rd, rs1=rs1, rs2=rs2),
                    st.sampled_from(["add", "sub", "mul", "and", "or", "xor", "sltu"]),
                    regs,
                    regs,
                    regs,
                ),
                st.builds(
                    lambda m, rd, rs1, imm: Instruction(m, rd=rd, rs1=rs1, imm=imm),
                    st.sampled_from(["addi", "andi", "ori", "ld", "lw", "flw", "fld"]),
                    regs,
                    regs,
                    st.integers(-2048, 2047),
                ),
                st.builds(
                    lambda m, rs1, rs2, imm: Instruction(m, rs1=rs1, rs2=rs2, imm=imm),
                    st.sampled_from(["sd", "sw", "fsd", "fsw"]),
                    regs,
                    regs,
                    st.integers(-2048, 2047),
                ),
                st.builds(
                    lambda m, rd, rs1, rs2: Instruction(m, rd=rd, rs1=rs1, rs2=rs2),
                    st.sampled_from(["fadd.d", "fmul.s", "fsgnj.d", "fmin.d"]),
                    regs,
                    regs,
                    regs,
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_straightline_words(self, instructions):
        words = [encode(insn) for insn in instructions]
        text = disassemble(words)
        again = assemble(text)
        assert again.words == words

    def test_out_of_region_branch_rejected(self):
        words = [encode(Instruction("jal", rd=0, imm=4096))]
        with pytest.raises(DecodingError, match="outside"):
            disassemble(words)
