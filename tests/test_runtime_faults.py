"""Chaos suite for the fault-tolerant experiment runtime.

Proves every recovery path in :mod:`repro.runtime` under deterministic
fault injection: corrupted-cache quarantine, stale-schema invalidation,
retry-until-success, deadline expiry, OOM-skip rendering in the figure
harnesses, and CLI error isolation.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.devices import get_device
from repro.errors import BudgetExceededError, SimulationError, TransientSimulationError
from repro.experiments import fig1, fig2, fig3, fig6, fig7
from repro.experiments.runner import RECORD_FIELDS, Runner, RunRecord
from repro.metrics.speedup import speedup_row
from repro.runtime import (
    CACHE_SCHEMA_VERSION,
    FaultPlan,
    Outcome,
    OutcomeStatus,
    RetryPolicy,
    RunCache,
    canonical_key,
    clear_faults,
    install_faults,
    read_journal,
    record_digest,
    summarize,
    supervise,
)
from repro.runtime.journal import default_journal_path

from tests.conftest import triad_program

DEVICE = "mango_pi_d1"
FAST = RetryPolicy(max_attempts=4, base_delay_s=0.0005, deadline_s=None)


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    """Each test starts and ends fault-free regardless of REPRO_FAULTS."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clear_faults()
    yield
    clear_faults()


@pytest.fixture
def runner(tmp_path):
    return Runner(str(tmp_path / "cache.json"), policy=FAST)


def _run(runner, key=("chaos", 1), n=64):
    return runner.run_supervised(key, lambda: triad_program(n), get_device(DEVICE))


# -- cache corruption & schema staleness -------------------------------------


class TestCacheRecovery:
    def test_corrupt_cache_quarantined_and_rebuilt(self, tmp_path):
        path = str(tmp_path / "cache.json")
        good = Runner(path, policy=FAST)
        record = good.run(("k", 1), lambda: triad_program(64), get_device(DEVICE))

        with open(path, "w") as fh:
            fh.write('{"schema": 2, "records": {{{ not json')

        recovered = Runner(path, policy=FAST)
        assert recovered.cache.quarantined is not None
        assert os.path.exists(recovered.cache.quarantined)
        assert ".corrupt-" in recovered.cache.quarantined
        # the run completes with correct (re-simulated) results
        again = recovered.run(("k", 1), lambda: triad_program(64), get_device(DEVICE))
        assert again == record
        # and the rebuilt cache file is valid versioned JSON again
        with open(path) as fh:
            data = json.load(fh)
        assert data["schema"] == CACHE_SCHEMA_VERSION
        assert len(data["records"]) == 1

    def test_cache_corrupt_fault_injection_round_trip(self, tmp_path):
        """REPRO_FAULTS=cache_corrupt corrupts every write; the next load
        quarantines and the run still completes correctly."""
        path = str(tmp_path / "cache.json")
        install_faults("cache_corrupt")
        first = Runner(path, policy=FAST)
        record = first.run(("k", 1), lambda: triad_program(64), get_device(DEVICE))
        # the fault hook garbled the file after the write
        with pytest.raises(ValueError):
            json.load(open(path))

        second = Runner(path, policy=FAST)
        assert second.cache.quarantined is not None
        again = second.run(("k", 1), lambda: triad_program(64), get_device(DEVICE))
        assert again == record

    def test_legacy_flat_cache_invalidated_not_crashed(self, tmp_path):
        """The pre-runtime flat {repr(key): record} format is parseable
        JSON with no schema field: records drop, nothing raises."""
        path = str(tmp_path / "cache.json")
        legacy = {"('k', 1)": {"program_name": "x", "bogus_field": 1}}
        with open(path, "w") as fh:
            json.dump(legacy, fh)
        runner = Runner(path, policy=FAST)
        assert runner.cache.quarantined is None
        assert len(runner.cache) == 0
        assert runner.cache.dropped == 1
        outcome = _run(runner, key=("k", 1))
        assert outcome.status is OutcomeStatus.COMPLETED

    def test_stale_record_fields_dropped_without_typeerror(self, tmp_path):
        """A v2 record whose fields no longer match RunRecord must be
        dropped at load, never exploded via RunRecord(**dict)."""
        path = str(tmp_path / "cache.json")
        key = canonical_key(("k", 1))
        stale = {"program_name": "x", "seconds": 1.0, "renamed_field": 3}
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "records": {key: {"digest": record_digest(stale), "record": stale}},
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)
        runner = Runner(path, policy=FAST)
        assert runner.cache.dropped == 1
        outcome = _run(runner, key=("k", 1))
        assert outcome.status is OutcomeStatus.COMPLETED
        assert isinstance(outcome.value, RunRecord)

    def test_tampered_digest_dropped(self, tmp_path):
        path = str(tmp_path / "cache.json")
        key = canonical_key(("k", 1))
        record = {name: 1 for name in RECORD_FIELDS}
        record["seconds"] = 99.0  # tampered after digesting
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "records": {key: {"digest": "0" * 16, "record": record}},
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)
        cache = RunCache(path, expected_fields=RECORD_FIELDS)
        assert cache.dropped == 1
        assert cache.get(key) is None

    def test_save_failure_warns_instead_of_silent_pass(self, tmp_path, caplog):
        missing_dir = str(tmp_path / "no" / "such" / "dir" / "cache.json")
        cache = RunCache(missing_dir, expected_fields=RECORD_FIELDS)
        with caplog.at_level("WARNING", logger="repro.runtime"):
            cache.put(canonical_key(("k",)), {name: 1 for name in RECORD_FIELDS})
        assert any("not saved" in message for message in caplog.messages)

    def test_canonical_key_is_stable_and_versioned(self):
        key = canonical_key(("fig2", "Naive", 512, 16, "xeon_4310t", 16))
        assert key.startswith(f"v{CACHE_SCHEMA_VERSION}:")
        assert key == canonical_key(("fig2", "Naive", 512, 16, "xeon_4310t", 16))
        assert key != canonical_key(("fig2", "Naive", 1024, 16, "xeon_4310t", 16))


# -- supervised execution -----------------------------------------------------


class TestSupervision:
    def test_transient_error_retried_until_success(self, runner, tmp_path):
        install_faults("sim_flaky:2")
        outcome = _run(runner)
        assert outcome.status is OutcomeStatus.COMPLETED
        assert outcome.attempts == 3
        entries = read_journal(default_journal_path(str(tmp_path / "cache.json")))
        assert entries[-1].outcome == "completed"
        assert entries[-1].attempts == 3

    def test_transient_error_exhausts_retry_budget(self, runner):
        install_faults("sim_flaky:100")  # never recovers within 4 attempts
        outcome = _run(runner)
        assert outcome.status is OutcomeStatus.FAILED
        assert outcome.attempts == FAST.max_attempts
        assert isinstance(outcome.error, TransientSimulationError)
        with pytest.raises(TransientSimulationError):
            runner.run(("other", 2), lambda: triad_program(64), get_device(DEVICE))

    def test_probabilistic_flaky_is_seeded_and_deterministic(self):
        from repro.runtime import faults

        def sequence():
            install_faults("sim_flaky:0.5,seed:7")
            outcomes = []
            for i in range(20):
                try:
                    faults.before_simulate(f"key-{i}")
                    outcomes.append("ok")
                except TransientSimulationError:
                    outcomes.append("fault")
            return outcomes

        first, second = sequence(), sequence()
        assert first == second
        assert "fault" in first and "ok" in first

    def test_deadline_expiry_times_out(self, tmp_path):
        install_faults("sim_hang:0.4")
        runner = Runner(
            str(tmp_path / "cache.json"),
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.0005, deadline_s=0.05),
        )
        outcome = _run(runner)
        assert outcome.status is OutcomeStatus.TIMED_OUT
        assert isinstance(outcome.error, BudgetExceededError)
        with pytest.raises(BudgetExceededError):
            runner.run(("again", 1), lambda: triad_program(64), get_device(DEVICE))

    def test_oom_becomes_skipped_outcome(self, runner):
        from repro.errors import OutOfMemoryError

        def boom():
            raise OutOfMemoryError("2 GiB matrix exceeds 1 GiB DRAM")

        outcome = runner.run_supervised(("oom", 1), boom, get_device(DEVICE))
        assert outcome.status is OutcomeStatus.SKIPPED
        assert "out of memory" in outcome.reason

    def test_run_raises_simulation_error_without_cause(self, runner):
        outcome = Outcome(OutcomeStatus.FAILED, reason="synthetic")
        runner.run_supervised = lambda *a, **k: outcome
        with pytest.raises(SimulationError):
            runner.run(("x",), lambda: triad_program(8), get_device(DEVICE))

    def test_retry_backoff_grows_and_jitters(self):
        import random

        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
        rng = random.Random(0)
        delays = [policy.backoff(attempt, rng) for attempt in (1, 2, 3)]
        assert delays[0] >= 0.1 and delays[1] >= 0.2 and delays[2] >= 0.4
        assert all(d <= 1.5 for d in delays)

    def test_policy_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_DEADLINE", "12.5")
        monkeypatch.setenv("REPRO_RETRY_BASE", "not-a-number")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 7
        assert policy.deadline_s == 12.5
        assert policy.base_delay_s == RetryPolicy.base_delay_s

    def test_negative_retry_base_is_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BASE", "-1")
        monkeypatch.setenv("REPRO_DEADLINE", "-5")
        policy = RetryPolicy.from_env()
        assert policy.base_delay_s == 0.0
        assert policy.deadline_s is None

    def test_supervise_never_raises_on_broken_sleep(self):
        """Even a sleep that raises (the old negative-REPRO_RETRY_BASE
        path) must classify as a failed outcome, not escape."""
        def flappy():
            raise TransientSimulationError("flap")

        def bad_sleep(_delay):
            raise ValueError("sleep length must be non-negative")

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001)
        outcome = supervise(flappy, policy, sleep=bad_sleep)
        assert outcome.status is OutcomeStatus.FAILED
        assert "retry backoff failed" in outcome.reason

    def test_deadline_is_whole_call_budget(self):
        """A transient-flapping call must not burn max_attempts × deadline:
        elapsed time is deducted and retries stop once the leftover budget
        cannot cover the base backoff."""
        calls = []

        def flappy():
            calls.append(time.monotonic())
            time.sleep(0.04)
            raise TransientSimulationError("flap")

        policy = RetryPolicy(
            max_attempts=50, base_delay_s=0.005, max_delay_s=0.005, deadline_s=0.1
        )
        start = time.monotonic()
        outcome = supervise(flappy, policy)
        elapsed = time.monotonic() - start
        assert outcome.status in (OutcomeStatus.FAILED, OutcomeStatus.TIMED_OUT)
        # Bounded by ~one deadline, not 50 × 0.1 s of per-attempt budgets.
        assert elapsed < 1.0
        assert len(calls) < 10

    def test_budget_leftover_too_small_for_retry_fails_fast(self):
        def flappy():
            time.sleep(0.03)
            raise TransientSimulationError("flap")

        policy = RetryPolicy(
            max_attempts=10, base_delay_s=10.0, deadline_s=0.5
        )
        outcome = supervise(flappy, policy)
        assert outcome.status is OutcomeStatus.FAILED
        assert "cannot cover a retry" in outcome.reason
        assert outcome.attempts == 1

    def test_fault_plan_parsing(self):
        plan = FaultPlan.parse("cache_corrupt,sim_flaky:0.3,sim_hang,seed:3")
        assert plan.cache_corrupt and plan.sim_flaky == 0.3
        assert plan.sim_hang > 0 and plan.seed == 3
        with pytest.raises(ValueError):
            FaultPlan.parse("rm_rf_slash")
        assert not FaultPlan.parse("").any_active


# -- journal ------------------------------------------------------------------


class TestJournal:
    def test_journal_records_every_attempt(self, tmp_path, runner):
        install_faults("sim_flaky:1")
        _run(runner, key=("a", 1))
        clear_faults()
        _run(runner, key=("b", 1), n=32)
        _run(runner, key=("b", 1), n=32)  # memory hit: no new journal line
        entries = read_journal(default_journal_path(str(tmp_path / "cache.json")))
        assert len(entries) == 2
        stats = summarize(entries)
        assert stats["by_outcome"]["completed"] == 2
        assert stats["retries"] == 1

    def test_journal_skips_torn_lines(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w") as fh:
            fh.write('{"ts": 1.0, "key": "k", "outcome": "completed", "duration_s": 0.1, "attempts": 1}\n')
            fh.write("{torn line\n")
        entries = read_journal(path)
        assert len(entries) == 1 and entries[0].outcome == "completed"


# -- figure-level graceful degradation ----------------------------------------


def _fake_panel(paper_n=16384, sim_n=1024):
    panel = fig2.Fig2Panel(paper_n=paper_n, sim_n=sim_n)
    panel.rows.append(
        speedup_row(
            "xeon_4310t",
            {"Naive": 1.0, "Parallel": 0.5, "Blocking": 0.25, "Manual_blocking": 0.2, "Dynamic": 0.1},
        )
    )
    panel.excluded.append("mango_pi_d1")
    return panel


class TestFigureDegradation:
    def test_fig2_renders_oom_exclusion_with_footnote(self):
        text = fig2.render([_fake_panel()])
        assert "does not fit" in text
        assert "† mango_pi_d1" in text
        assert "as in the paper" in text

    def test_fig2_partial_variant_failure_renders_dash(self):
        from repro.experiments.report import CellFailure

        panel = _fake_panel()
        del panel.rows[0].speedups["Dynamic"]
        del panel.rows[0].seconds["Dynamic"]
        panel.failures.append(
            CellFailure("xeon_4310t", "Dynamic", "failed", "injected chaos"))
        text = fig2.render([panel])
        assert "—" in text.splitlines()[3]  # the xeon data row
        assert "xeon_4310t/Dynamic failed: injected chaos" in text

    def test_fig3_mango_pi_16384_skipped_cell_with_oom_footnote(self, monkeypatch):
        """The acceptance case: the 16384^2 Mango Pi transpose renders as
        a skipped row with an OOM footnote instead of raising."""
        monkeypatch.setattr(
            fig2, "run_panel", lambda paper_n, scale, pool=None: _fake_panel(paper_n)
        )
        monkeypatch.setattr(fig1, "dram_bandwidth", lambda key, scale: 10.0)
        rows = fig3.run()
        mango = [r for r in rows if r.device_key == "mango_pi_d1"]
        assert len(mango) == 2 and all(r.status == "skipped" for r in mango)
        text = fig3.render(rows)
        assert "—" in text
        assert "does not fit in DRAM (out of memory)" in text
        # completed rows still carry data
        assert any(r.status == "completed" and r.best_utilization for r in rows)

    def test_fig6_device_failure_renders_dash_row(self):
        from repro.experiments.report import CellFailure

        result = fig6.Fig6Result(width=192, height=160, filter_size=19)
        result.failures.append(
            CellFailure("visionfive_jh7100", "Naive", "timed_out", "deadline 0.05s"))
        text = fig6.render(result)
        assert "visionfive_jh7100" in text
        assert "† visionfive_jh7100/Naive timed_out" in text

    def test_fig7_missing_baseline_degrades(self):
        row = speedup_row("dev", {"Naive": 1.0, "Unit-stride": 0.9, "Memory": 0.1, "Parallel": 0.05})
        result = fig6.Fig6Result(width=192, height=160, filter_size=19, rows=[row])
        import repro.experiments.fig7 as f7

        rows = [
            f7.Fig7Row(r.device_key, {}, {}, status="skipped", note="baseline missing")
            if "1D_kernels" not in r.seconds else r
            for r in result.rows
        ]
        text = f7.render(rows)
        assert "—" in text and "baseline missing" in text

    def test_fig1_failed_level_renders_dash(self):
        rows = [
            fig1.Fig1Row("dev", "L1", 1.0, 2.0, 3.0, 4.0),
            fig1.Fig1Row("dev", "DRAM", 0, 0, 0, 0, status="failed", note="dev/DRAM: failed — boom"),
        ]
        text = fig1.render(rows)
        assert "† dev/DRAM" in text
        assert text.count("—") >= 4


# -- CLI isolation and status --------------------------------------------------


class TestCliIsolation:
    @pytest.fixture
    def stub_figures(self, monkeypatch):
        from repro import cli

        for name in cli.FIGURES:
            mod = getattr(cli, name)
            monkeypatch.setattr(mod, "run", lambda pool=None: [], raising=True)
            monkeypatch.setattr(
                mod, "render", lambda rows, _n=name: f"{_n.upper()}OUT", raising=True
            )
        return cli

    def test_all_continues_past_failing_figure(self, stub_figures, monkeypatch, capsys):
        def explode(rows):
            raise RuntimeError("injected fig3 failure")

        monkeypatch.setattr(stub_figures.fig3, "render", explode)
        rc = stub_figures.main(["all"])
        out, err = capsys.readouterr()
        assert rc == 1
        for name in ("FIG1OUT", "FIG2OUT", "FIG6OUT", "FIG7OUT"):
            assert name in out
        assert "FAILURE SUMMARY" in err
        assert "injected fig3 failure" in err

    def test_all_green_exits_zero(self, stub_figures, capsys):
        rc = stub_figures.main(["all"])
        out, _err = capsys.readouterr()
        assert rc == 0
        assert "FIG1OUT" in out and "FIG7OUT" in out

    def test_csv_dir_output_survives_later_failure(self, stub_figures, monkeypatch, tmp_path, capsys):
        from repro.experiments import export

        written = []

        def fake_writer(name):
            def _write(result, directory):
                if name == "fig2":
                    raise OSError("disk full")
                written.append(name)
                return f"{directory}/{name}.csv"

            return _write

        monkeypatch.setattr(
            export,
            "EXPORTERS",
            {name: (lambda pool=None: [], fake_writer(name)) for name in ("fig1", "fig2", "fig3")},
        )
        rc = stub_figures.main(["fig1", "fig2", "fig3", "--csv-dir", str(tmp_path)])
        _out, err = capsys.readouterr()
        assert rc == 1
        assert written == ["fig1", "fig3"]
        assert "fig2 (csv export)" in err

    def test_status_subcommand_summarizes_journal(self, tmp_path, monkeypatch, capsys):
        from repro import cli
        from repro.experiments import runner as runner_mod

        cache_path = str(tmp_path / "cache.json")
        monkeypatch.setenv("REPRO_CACHE", cache_path)
        runner = Runner(cache_path, policy=FAST)
        install_faults("sim_flaky:1")
        _run(runner, key=("s", 1))
        clear_faults()

        rc = cli.main(["status"])
        out, _err = capsys.readouterr()
        assert rc == 0
        assert "Run journal" in out
        assert "completed" in out
        assert "retries: 1" in out

    def test_status_with_cache_off(self, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setenv("REPRO_CACHE", "off")
        rc = cli.main(["status"])
        out, _err = capsys.readouterr()
        assert rc == 0
        assert "disabled" in out
